"""Structured span/event recording for simulation timelines.

A :class:`SpanRecorder` collects the raw material of an execution
timeline: *spans* (an activity on a track with a begin time and a
duration — a seek, a bus transfer, a disklet quantum), *instant events*
(a cache hit, a phase barrier) and *counter samples* (queue depth over
time). Tracks are free-form strings like ``disk.adisk3`` or ``fe-cpu``;
the Chrome-trace exporter maps each track to its own timeline row.

Recording explicit ``(ts, dur)`` pairs via :meth:`SpanRecorder.complete`
is the idiomatic pattern inside simulation processes, where the caller
already brackets a ``yield`` with ``sim.now`` readings; the
:meth:`begin`/:meth:`end` pair exists for activities whose end is
decided elsewhere (and tolerates processes that die mid-span — open
spans are flushed at export time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "InstantEvent", "CounterSample", "OpenSpan",
           "SpanRecorder"]


@dataclass(frozen=True)
class Span:
    """One completed activity on a track."""

    cat: str
    name: str
    track: str
    ts: float                  # begin time, simulated seconds
    dur: float                 # duration, simulated seconds
    args: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker on a track."""

    cat: str
    name: str
    track: str
    ts: float
    args: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named set of numeric series (queue depth, ...)."""

    name: str
    ts: float
    values: Dict[str, float]


@dataclass
class OpenSpan:
    """Handle returned by :meth:`SpanRecorder.begin`; pass to ``end``."""

    cat: str
    name: str
    track: str
    ts: float
    args: Optional[Dict[str, Any]] = None
    closed: bool = False


class SpanRecorder:
    """Bounded recorder of spans, instants and counter samples.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time.
    max_events:
        Total event budget across spans + instants + counter samples.
        Once exhausted, further events are counted in :attr:`dropped`
        instead of stored (the trace stays loadable; the summary
        reports the loss).
    """

    def __init__(self, clock: Callable[[], float],
                 max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._clock = clock
        self.max_events = max_events
        self.spans: List[Span] = []
        self.instants: List[InstantEvent] = []
        self.counters: List[CounterSample] = []
        self._open: List[OpenSpan] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    @property
    def _full(self) -> bool:
        return len(self) >= self.max_events

    # -- recording --------------------------------------------------------
    def complete(self, cat: str, name: str, track: str, ts: float,
                 dur: float, args: Optional[Dict[str, Any]] = None) -> None:
        """Record a finished span with explicit begin time and duration."""
        if dur < 0:
            raise ValueError(f"negative span duration: {dur}")
        if self._full:
            self.dropped += 1
            return
        self.spans.append(Span(cat, name, track, ts, dur, args))

    def begin(self, cat: str, name: str, track: str,
              args: Optional[Dict[str, Any]] = None) -> OpenSpan:
        """Open a span at the current time; close it with :meth:`end`."""
        span = OpenSpan(cat, name, track, self._clock(), args)
        self._open.append(span)
        return span

    def end(self, span: OpenSpan) -> None:
        """Close an open span at the current time (idempotent)."""
        if span.closed:
            return
        span.closed = True
        try:
            self._open.remove(span)
        except ValueError:
            pass
        self.complete(span.cat, span.name, span.track, span.ts,
                      self._clock() - span.ts, span.args)

    def instant(self, cat: str, name: str, track: str,
                args: Optional[Dict[str, Any]] = None,
                ts: Optional[float] = None) -> None:
        """Record a zero-duration marker (cache hit, barrier, ...)."""
        if self._full:
            self.dropped += 1
            return
        when = self._clock() if ts is None else ts
        self.instants.append(InstantEvent(cat, name, track, when, args))

    def counter(self, name: str, values: Dict[str, float],
                ts: Optional[float] = None) -> None:
        """Record one sample of a named counter series."""
        if self._full:
            self.dropped += 1
            return
        when = self._clock() if ts is None else ts
        self.counters.append(CounterSample(name, when, dict(values)))

    # -- queries ----------------------------------------------------------
    def open_spans(self) -> Tuple[OpenSpan, ...]:
        """Spans begun but not yet ended (processes still mid-activity)."""
        return tuple(self._open)

    def flush_open(self, now: Optional[float] = None) -> int:
        """Close every open span at ``now`` (export-time cleanup).

        Returns the number of spans closed. Processes that were
        interrupted or terminated mid-span leave their spans open; this
        turns them into finite spans ending at the flush time so the
        exported trace stays well-formed.
        """
        when = self._clock() if now is None else now
        flushed = 0
        for span in list(self._open):
            span.closed = True
            self.complete(span.cat, span.name, span.track, span.ts,
                          max(0.0, when - span.ts), span.args)
            flushed += 1
        self._open.clear()
        return flushed

    def tracks(self) -> List[str]:
        """All track names seen, in first-appearance order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for inst in self.instants:
            seen.setdefault(inst.track, None)
        return list(seen)

    def busy_by_track(self) -> Dict[str, float]:
        """Summed span durations per track (the utilization numerator)."""
        busy: Dict[str, float] = {}
        for span in self.spans:
            busy[span.track] = busy.get(span.track, 0.0) + span.dur
        return busy

    def window(self, start: float, end: float) -> List[Span]:
        """Spans overlapping ``[start, end)``."""
        if end < start:
            raise ValueError(f"bad window [{start}, {end})")
        return [s for s in self.spans
                if s.ts < end and s.ts + s.dur >= start]
