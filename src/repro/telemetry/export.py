"""Exporters: Chrome trace-event JSON, flat metrics JSON, text summary.

The Chrome trace output follows the Trace Event Format (the
``traceEvents`` array form) and loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every span track becomes a named thread (``M``/``thread_name``
  metadata + ``X`` complete events, timestamps in microseconds);
* instant events become ``i`` events scoped to their thread;
* counter samples become ``C`` events, which Perfetto renders as
  stacked area charts (queue depth over time, utilization over time).

The metrics JSON is the registry snapshot plus span-derived busy totals;
the text summary is a human-readable utilization table for terminals.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

__all__ = ["chrome_trace", "metrics_json", "utilization_summary",
           "write_chrome_trace", "write_metrics_json", "write_artifacts"]

#: Synthetic process ids grouping tracks by top-level component, so
#: Perfetto clusters disk rows together, bus rows together, etc.
_PID_ORDER = ("phase", "host", "disk", "bus", "net", "diskos", "kernel")


def _pid_for(cat: str) -> int:
    try:
        return _PID_ORDER.index(cat)
    except ValueError:
        return len(_PID_ORDER)


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(telemetry, flush_open: bool = True) -> Dict[str, Any]:
    """Render a telemetry hub as a Chrome trace-event document."""
    spans = telemetry.spans
    if flush_open:
        spans.flush_open()
    events: List[Dict[str, Any]] = []

    # Stable track -> (pid, tid) assignment, grouped by category.
    track_ids: Dict[str, tuple] = {}
    track_cat: Dict[str, str] = {}
    for span in spans.spans:
        track_cat.setdefault(span.track, span.cat)
    for inst in spans.instants:
        track_cat.setdefault(inst.track, inst.cat)
    next_tid: Dict[int, int] = {}
    for track in sorted(track_cat):
        pid = _pid_for(track_cat[track])
        tid = next_tid.get(pid, 0)
        next_tid[pid] = tid + 1
        track_ids[track] = (pid, tid)
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })

    for span in spans.spans:
        pid, tid = track_ids[span.track]
        event: Dict[str, Any] = {
            "name": span.name, "cat": span.cat, "ph": "X",
            "pid": pid, "tid": tid,
            "ts": _us(span.ts), "dur": _us(span.dur),
        }
        if span.args:
            event["args"] = span.args
        events.append(event)

    for inst in spans.instants:
        pid, tid = track_ids[inst.track]
        event = {
            "name": inst.name, "cat": inst.cat, "ph": "i", "s": "t",
            "pid": pid, "tid": tid, "ts": _us(inst.ts),
        }
        if inst.args:
            event["args"] = inst.args
        events.append(event)

    for sample in spans.counters:
        events.append({
            "name": sample.name, "ph": "C", "pid": 0, "tid": 0,
            "ts": _us(sample.ts), "args": sample.values,
        })

    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "dropped_events": spans.dropped,
        },
    }
    if telemetry.meta:
        doc["otherData"].update(
            {k: str(v) for k, v in telemetry.meta.items()})
    return doc


def metrics_json(telemetry) -> Dict[str, Any]:
    """Registry snapshot + span busy totals as one JSON-able document."""
    horizon = (telemetry.run_ended_at
               if telemetry.run_ended_at else telemetry.now())
    busy = telemetry.spans.busy_by_track()
    return {
        "meta": dict(telemetry.meta),
        "elapsed": horizon,
        "metrics": telemetry.registry.snapshot(),
        "tracks": {
            track: {
                "busy": seconds,
                "utilization": (seconds / horizon) if horizon > 0 else 0.0,
            }
            for track, seconds in sorted(busy.items())
        },
        "span_counts": {
            "spans": len(telemetry.spans.spans),
            "instants": len(telemetry.spans.instants),
            "counter_samples": len(telemetry.spans.counters),
            "dropped": telemetry.spans.dropped,
        },
    }


def utilization_summary(telemetry, top: int = 30) -> str:
    """Terminal-friendly per-track utilization table."""
    doc = metrics_json(telemetry)
    horizon = doc["elapsed"]
    lines = [f"telemetry summary — {horizon:.3f} simulated seconds, "
             f"{doc['span_counts']['spans']} spans, "
             f"{doc['span_counts']['instants']} instants"]
    if doc["span_counts"]["dropped"]:
        lines.append(f"  WARNING: {doc['span_counts']['dropped']} events "
                     f"dropped (raise max_events)")
    rows = sorted(doc["tracks"].items(),
                  key=lambda kv: -kv[1]["utilization"])
    if rows:
        width = max(len(track) for track, _ in rows[:top])
        lines.append(f"  {'track'.ljust(width)}  busy(s)    util")
        for track, fields in rows[:top]:
            bar = "#" * int(round(20 * min(1.0, fields["utilization"])))
            lines.append(f"  {track.ljust(width)}  {fields['busy']:8.3f}  "
                         f"{fields['utilization']:6.1%}  {bar}")
        if len(rows) > top:
            lines.append(f"  ... {len(rows) - top} more tracks")
    else:
        lines.append("  (no spans recorded)")
    probes = [(name, entry) for name, entry in doc["metrics"].items()
              if entry["kind"] == "series"]
    if probes:
        lines.append("  sampled probes (time-weighted averages):")
        for name, entry in probes:
            lines.append(f"    {name}: avg {entry['average']:.3f} "
                         f"peak {entry['peak']:.3f}")
    hists = [(name, entry) for name, entry in doc["metrics"].items()
             if entry["kind"] == "histogram" and entry["count"]]
    if hists:
        lines.append("  latency distributions (exact streaming quantiles):")
        for name, entry in hists:
            lines.append(
                f"    {name}: n={entry['count']:.0f} "
                f"p50 {entry['p50']:.6f} p95 {entry['p95']:.6f} "
                f"p99 {entry['p99']:.6f} max {entry['max']:.6f}")
    return "\n".join(lines)


def write_chrome_trace(telemetry, path: str) -> str:
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry), handle)
    return path


def write_metrics_json(telemetry, path: str) -> str:
    with open(path, "w") as handle:
        json.dump(metrics_json(telemetry), handle, indent=1)
    return path


def write_artifacts(telemetry, directory: str,
                    prefix: str = "run") -> Dict[str, str]:
    """Write trace + metrics + summary next to a run's reports.

    Returns ``{"trace": path, "metrics": path, "summary": path}``.
    """
    os.makedirs(directory, exist_ok=True)
    paths = {
        "trace": os.path.join(directory, f"{prefix}.trace.json"),
        "metrics": os.path.join(directory, f"{prefix}.metrics.json"),
        "summary": os.path.join(directory, f"{prefix}.summary.txt"),
    }
    write_chrome_trace(telemetry, paths["trace"])
    write_metrics_json(telemetry, paths["metrics"])
    with open(paths["summary"], "w") as handle:
        handle.write(utilization_summary(telemetry) + "\n")
    return paths
