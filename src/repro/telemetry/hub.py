"""The telemetry hub: one object that owns all observability state.

A :class:`Telemetry` bundles a :class:`~repro.telemetry.metrics.MetricRegistry`
and a :class:`~repro.telemetry.spans.SpanRecorder`, plus a periodic
sampler that polls registered probes (queue depths, utilizations) at a
fixed simulated interval. Install it on a simulator **before** building
the machine::

    sim = Simulator()
    tel = Telemetry().install(sim)
    machine = build_machine(sim, config)
    machine.run(program)
    write_chrome_trace(tel, "trace.json")

Every instrumentation probe in the component models goes through
``sim.telemetry``; the default is the module-level :data:`NULL_TELEMETRY`
singleton whose ``enabled`` flag is False, so an uninstrumented run costs
one attribute load and a branch per probe site — nothing is allocated,
recorded or sampled.

Lifecycle: installation registers a hook on the simulator so that the
sampling process starts when ``run()`` does and a final sample plus an
open-span flush happen when the run ends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .metrics import MetricRegistry
from .spans import SpanRecorder

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live observability hub: registry + spans + periodic sampling.

    Parameters
    ----------
    sample_interval:
        Simulated seconds between probe samples (``None`` disables the
        periodic sampler; explicit span/metric probes still record).
    max_events:
        Span-recorder event budget; see
        :class:`~repro.telemetry.spans.SpanRecorder`.
    """

    enabled = True

    def __init__(self, sample_interval: Optional[float] = 0.25,
                 max_events: int = 1_000_000):
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}")
        self.sample_interval = sample_interval
        self._sim: Any = None
        self.registry = MetricRegistry(clock=self.now)
        self.spans = SpanRecorder(clock=self.now, max_events=max_events)
        self._probes: Dict[str, Callable[[], float]] = {}
        self._sampler_running = False
        self.run_ended_at: Optional[float] = None
        self.meta: Dict[str, Any] = {}

    # -- clock ------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time (0.0 before installation)."""
        return self._sim.now if self._sim is not None else 0.0

    # -- wiring -----------------------------------------------------------
    def install(self, sim) -> "Telemetry":
        """Attach to ``sim``: become ``sim.telemetry`` and hook its run."""
        if self._sim is not None and self._sim is not sim:
            raise RuntimeError("Telemetry is already installed on a "
                               "different simulator")
        self._sim = sim
        sim.telemetry = self
        sim.add_hook(self)
        return self

    # Simulator lifecycle hook protocol --------------------------------
    def run_started(self, sim) -> None:
        if (self.sample_interval is not None and self._probes
                and not self._sampler_running):
            self._sampler_running = True
            sim.process(self._sample_loop(sim), name="telemetry-sampler")

    def run_finished(self, sim) -> None:
        self.run_ended_at = sim.now
        if self._probes:
            self._sample_once()
        self.spans.flush_open(sim.now)

    # -- probes -----------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a zero-argument numeric probe sampled periodically.

        Each sample lands in a ``series`` metric under ``name`` *and* as
        a counter-track sample in the trace, so the value is visible
        both as a summary average and as a timeline.
        """
        self._probes[name] = fn
        self.registry.series(name)

    def probe_names(self) -> List[str]:
        return sorted(self._probes)

    def _sample_once(self) -> None:
        ts = self.now()
        for name, fn in self._probes.items():
            try:
                value = float(fn())
            except ZeroDivisionError:
                value = 0.0
            self.registry.series(name).set(value)
            self.spans.counter(name, {"value": value}, ts=ts)

    def _sample_loop(self, sim):
        while True:
            self._sample_once()
            # Re-arm only while other work is pending, so the sampler
            # never keeps an otherwise-finished simulation alive.
            if sim.peek() == float("inf"):
                self._sampler_running = False
                return
            yield sim.timeout(self.sample_interval)

    # -- convenience ------------------------------------------------------
    def utilization(self, track: str, until: Optional[float] = None) -> float:
        """Busy fraction of a span track over the run so far."""
        horizon = until if until is not None else (
            self.run_ended_at if self.run_ended_at else self.now())
        if horizon <= 0:
            return 0.0
        return self.spans.busy_by_track().get(track, 0.0) / horizon


class NullTelemetry:
    """The do-nothing hub: every probe site's default target.

    Exposes the same attribute surface as :class:`Telemetry`
    (``.spans``, ``.registry``, ``.add_probe`` ...) so call sites that
    forget the ``enabled`` guard still work — they just record nothing.
    Hot paths should guard anyway; the guard is the zero-cost contract.
    """

    enabled = False
    sample_interval = None
    run_ended_at = None

    def __init__(self):
        self.registry = MetricRegistry()
        self.spans = _NullSpanRecorder()
        self.meta: Dict[str, Any] = {}

    def now(self) -> float:
        return 0.0

    def install(self, sim) -> "NullTelemetry":
        sim.telemetry = self
        return self

    def run_started(self, sim) -> None:
        pass

    def run_finished(self, sim) -> None:
        pass

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        pass

    def probe_names(self) -> List[str]:
        return []

    def utilization(self, track: str, until: Optional[float] = None) -> float:
        return 0.0


class _NullSpanRecorder:
    """No-op twin of :class:`~repro.telemetry.spans.SpanRecorder`."""

    spans: tuple = ()
    instants: tuple = ()
    counters: tuple = ()
    dropped = 0

    def __len__(self) -> int:
        return 0

    def complete(self, *args, **kwargs) -> None:
        pass

    def begin(self, *args, **kwargs):
        from .spans import OpenSpan
        return OpenSpan("", "", "", 0.0, None, closed=True)

    def end(self, span) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def open_spans(self) -> tuple:
        return ()

    def flush_open(self, now=None) -> int:
        return 0

    def tracks(self) -> list:
        return []

    def busy_by_track(self) -> dict:
        return {}

    def window(self, start: float, end: float) -> list:
        return []


#: Shared do-nothing hub; ``Simulator`` points at this until a real
#: :class:`Telemetry` is installed.
NULL_TELEMETRY = NullTelemetry()
