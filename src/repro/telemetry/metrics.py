"""The metric registry: hierarchically named counters, gauges, histograms
and time-weighted series.

This generalizes the loose helpers in :mod:`repro.sim.stats` (``Counter``,
``Tally``, ``TimeWeighted``, ``BusyTracker``) into one addressable
namespace: every metric lives under a dotted hierarchical name like
``disk.3.arm.busy`` or ``bus.fc.loop0.queue``, so exporters and analyses
can select whole subtrees (``disk.*``) without knowing which component
created what.

Metric kinds
------------
``counter``   monotone accumulator (bytes moved, requests, cache hits)
``gauge``     last-written value (queue depth *right now*)
``histogram`` distribution of observations (response times)
``series``    piecewise-constant value integrated over time — the
              time-weighted average is the utilization primitive
``bound``     read-through gauge: a zero-argument callable sampled at
              snapshot time (wraps existing accessors like
              ``Server.utilization`` without copying state)
"""

from __future__ import annotations

import random
from bisect import bisect_right
from fnmatch import fnmatchcase
from math import ceil
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

__all__ = ["Metric", "CounterMetric", "GaugeMetric", "HistogramMetric",
           "SeriesMetric", "BoundMetric", "MetricRegistry",
           "DEFAULT_BOUNDS", "DEFAULT_RESERVOIR"]


class Metric:
    """Base: a named measurement with a ``kind`` and a ``snapshot()``."""

    kind = "metric"

    def __init__(self, name: str):
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name

    def snapshot(self) -> Dict[str, float]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class CounterMetric(Metric):
    """A monotone accumulator."""

    kind = "counter"

    def __init__(self, name: str):
        super().__init__(name)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up ({amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class GaugeMetric(Metric):
    """Last-written value."""

    kind = "gauge"

    def __init__(self, name: str, initial: float = 0.0):
        super().__init__(name)
        self.value = initial

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


#: Default histogram bucket upper bounds: half-decades from 10 us to 100 s,
#: wide enough for response times and span durations alike.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)


#: Default reservoir capacity: exact order statistics up to this many
#: observations, uniform (Vitter Algorithm R) sampling beyond.
DEFAULT_RESERVOIR = 4096


class HistogramMetric(Metric):
    """Distribution of observations with exact streaming quantiles.

    Bucket counters (fixed ``bounds``) are kept for shape export, but
    quantiles come from a value reservoir: *exact* order statistics
    while ``count <= reservoir`` observations, and a uniform random
    sample (Vitter's Algorithm R) past that. The reservoir's RNG is
    seeded from the metric name, so two same-seed runs produce
    byte-identical p50/p95/p99 regardless of registration order or
    platform. Pass ``reservoir=0`` for the legacy bucket-upper-bound
    approximation only.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS,
                 reservoir: int = DEFAULT_RESERVOIR):
        super().__init__(name)
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError(f"{name}: histogram needs at least one bound")
        if reservoir < 0:
            raise ValueError(f"{name}: reservoir must be >= 0")
        # One bucket per bound plus the overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.reservoir = reservoir
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        # Deterministic per-name seed: replacement decisions are a pure
        # function of (metric name, observation order).
        self._rng = random.Random(crc32(name.encode("utf-8"))) \
            if reservoir else None

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self.reservoir:
            if len(self._samples) < self.reservoir:
                self._samples.append(value)
                self._sorted = None
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.reservoir:
                    self._samples[slot] = value
                    self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """True while the reservoir still holds every observation."""
        return bool(self.reservoir) and self.count <= self.reservoir

    def quantile(self, q: float) -> float:
        """Streaming quantile: nearest-rank over the value reservoir.

        Exact while :attr:`exact` holds; an unbiased sample estimate
        beyond. With ``reservoir=0`` falls back to the bucket
        upper-bound approximation.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self._samples:
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            rank = ceil(q * len(self._sorted)) - 1
            return self._sorted[max(0, min(rank, len(self._sorted) - 1))]
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.buckets):
            running += n
            if running >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class SeriesMetric(Metric):
    """Piecewise-constant value tracked against the simulation clock.

    The time-weighted average over the metric's lifetime ``[t_created,
    now]`` is the standard utilization / mean-queue-length estimator.
    """

    kind = "series"

    def __init__(self, name: str, clock: Callable[[], float],
                 initial: float = 0.0):
        super().__init__(name)
        self._clock = clock
        self._value = initial
        self._area = 0.0
        self._created = clock()
        self._since = self._created
        self.peak = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self._clock()
        self._area += self._value * (now - self._since)
        self._since = now
        self._value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted average over the metric's lifetime."""
        now = self._clock()
        elapsed = now - self._created
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._since)
        return area / elapsed

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value, "average": self.average(),
                "peak": self.peak}


class BoundMetric(Metric):
    """Read-through gauge: samples a callable at snapshot time."""

    kind = "bound"

    def __init__(self, name: str, fn: Callable[[], float]):
        super().__init__(name)
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn())

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class MetricRegistry:
    """The central, hierarchically addressed metric namespace.

    Factory accessors are get-or-create and idempotent: two probes that
    ask for ``counter("net.bytes")`` share the metric. Asking for an
    existing name with a *different* kind is an error — it would
    silently split one measurement into two.
    """

    def __init__(self, clock: Callable[[], float] = lambda: 0.0):
        self._clock = clock
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    # -- factories --------------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric)

    def gauge(self, name: str, initial: float = 0.0) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric, initial)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS,
                  reservoir: int = DEFAULT_RESERVOIR
                  ) -> HistogramMetric:
        return self._get_or_create(name, HistogramMetric, bounds, reservoir)

    def series(self, name: str, initial: float = 0.0) -> SeriesMetric:
        return self._get_or_create(name, SeriesMetric, self._clock, initial)

    def bind(self, name: str, fn: Callable[[], float]) -> BoundMetric:
        """Expose an existing accessor (e.g. ``server.utilization``)."""
        return self._get_or_create(name, BoundMetric, fn)

    # -- queries ----------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"no metric named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def match(self, pattern: str) -> List[Metric]:
        """Metrics whose names match a glob (``disk.*.busy.seek``)."""
        return [self._metrics[name] for name in self.names()
                if fnmatchcase(name, pattern)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Flatten every metric to ``{name: {kind, fields...}}``."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: Dict[str, Any] = {"kind": metric.kind}
            entry.update(metric.snapshot())
            out[name] = entry
        return out

    def as_rows(self) -> List[Tuple[str, float]]:
        """(dotted-name, value) rows — the StatSet-compatible flat view."""
        rows: List[Tuple[str, float]] = []
        for name, entry in self.snapshot().items():
            for fieldname, value in entry.items():
                if fieldname == "kind":
                    continue
                key = name if fieldname == "value" else f"{name}.{fieldname}"
                rows.append((key, float(value)))
        return rows
