"""Simulation observability: structured tracing, metrics, trace export.

The subsystem has three parts:

* :mod:`repro.telemetry.metrics` — a hierarchical
  :class:`MetricRegistry` of counters, gauges, histograms and
  time-weighted series (``disk.3.arm.busy``-style names);
* :mod:`repro.telemetry.spans` — a :class:`SpanRecorder` capturing what
  every resource was doing over time (spans, instants, counter samples);
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), flat metrics JSON, and a text summary.

:class:`Telemetry` bundles them; :data:`NULL_TELEMETRY` is the no-op
default every probe site sees until a hub is installed, so instrumented
code is zero-cost when observability is off. See docs/OBSERVABILITY.md.
"""

from .hub import NULL_TELEMETRY, NullTelemetry, Telemetry
from .metrics import (
    BoundMetric,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Metric,
    MetricRegistry,
    SeriesMetric,
)
from .spans import CounterSample, InstantEvent, OpenSpan, Span, SpanRecorder
from .export import (
    chrome_trace,
    metrics_json,
    utilization_summary,
    write_artifacts,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY",
    "MetricRegistry", "Metric", "CounterMetric", "GaugeMetric",
    "HistogramMetric", "SeriesMetric", "BoundMetric",
    "SpanRecorder", "Span", "InstantEvent", "CounterSample", "OpenSpan",
    "chrome_trace", "metrics_json", "utilization_summary",
    "write_chrome_trace", "write_metrics_json", "write_artifacts",
]
