"""Key-skew variants of the repartitioning tasks.

The paper's datasets use uniformly distributed keys (sort, join), which
makes every shuffle perfectly balanced. Real decision-support keys are
rarely uniform; this module produces *skewed* variants of any task
program by assigning each repartitioning phase a Zipf destination
distribution, so hot partitions concentrate on a few workers. The
engines serialize at the hot receivers, which is the classic
partitioned-parallelism failure mode the uniform datasets hide.

This is an extension beyond the paper, exercised by
``benchmarks/test_ablation_skew.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..arch.program import Phase, TaskProgram

__all__ = ["zipf_weights", "skewed_variant", "imbalance_factor"]


def zipf_weights(workers: int, theta: float) -> List[float]:
    """Normalized Zipf(theta) weights over ``workers`` partitions."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if theta < 0:
        raise ValueError(f"negative skew exponent: {theta}")
    raw = [1.0 / (rank + 1) ** theta for rank in range(workers)]
    total = sum(raw)
    return [value / total for value in raw]


def imbalance_factor(workers: int, theta: float) -> float:
    """Hot-partition load relative to a perfectly uniform spread.

    1.0 for uniform keys; grows toward ``workers / H(workers)`` as theta
    approaches 1. This is the lower bound on the slowdown a
    receiver-bound shuffle suffers under the skew.
    """
    weights = zipf_weights(workers, theta)
    return max(weights) * workers


def skewed_variant(program: TaskProgram, theta: float) -> TaskProgram:
    """``program`` with every repartitioning phase skewed by Zipf(theta).

    Phases that do not shuffle are untouched; the task name gains a
    ``+skew`` suffix so results are distinguishable.
    """
    if theta < 0:
        raise ValueError(f"negative skew exponent: {theta}")
    phases = tuple(
        replace(phase, shuffle_skew=theta)
        if phase.shuffle_fraction > 0 else phase
        for phase in program.phases
    )
    return TaskProgram(task=f"{program.task}+skew{theta:g}", phases=phases)
