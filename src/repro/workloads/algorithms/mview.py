"""Reference materialized-view maintenance.

A derived relation (view) holds ``SUM(value) GROUP BY key`` over a base
relation; a delta stream of (key, value-change) rows is propagated to
the view partitions that own the affected keys, then merged. The
partition-by-owner step mirrors the repartitioning the simulated task
charges the interconnect for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .relational import groupby_sum

__all__ = ["build_view", "partition_deltas", "apply_deltas",
           "maintain_view"]

View = Dict[int, int]
Delta = Tuple[int, int]


def build_view(base: np.ndarray) -> View:
    """Materialize SUM(value) GROUP BY key over the base relation."""
    return groupby_sum(base)


def partition_deltas(deltas: Sequence[Delta],
                     owners: int) -> List[List[Delta]]:
    """Route each delta to the worker owning its key partition."""
    if owners < 1:
        raise ValueError(f"need at least one owner, got {owners}")
    parts: List[List[Delta]] = [[] for _ in range(owners)]
    for key, change in deltas:
        parts[key % owners].append((key, change))
    return parts


def apply_deltas(view_partition: View, deltas: Sequence[Delta]) -> View:
    """Merge a delta batch into one view partition (refresh phase)."""
    refreshed = dict(view_partition)
    for key, change in deltas:
        refreshed[key] = refreshed.get(key, 0) + change
    return refreshed


def maintain_view(base: np.ndarray, deltas: Sequence[Delta],
                  owners: int = 4) -> View:
    """Full maintenance: build, partition by owner, apply, recombine."""
    view = build_view(base)
    partitions: List[View] = [
        {k: v for k, v in view.items() if k % owners == owner}
        for owner in range(owners)
    ]
    routed = partition_deltas(deltas, owners)
    merged: View = {}
    for partition, batch in zip(partitions, routed):
        merged.update(apply_deltas(partition, batch))
    return merged
