"""Reference implementations: select, aggregate, group-by, hash join.

These are the *semantic* versions of the simulated tasks — small-scale,
in-memory, deterministic — used by the test suite to validate that the
dataflow shapes the simulator charges for (selectivities, projection
ratios, group counts, join output sizes) correspond to what the actual
algorithms produce.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = ["select", "aggregate_sum", "groupby_sum", "grace_hash_join"]


def select(relation: np.ndarray,
           predicate: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
    """Filter ``relation`` by a vectorized ``predicate`` over rows."""
    mask = predicate(relation)
    if mask.shape != (len(relation),):
        raise ValueError("predicate must return one boolean per row")
    return relation[mask]


def aggregate_sum(relation: np.ndarray, column: str = "value") -> int:
    """Zero-dimensional SUM aggregate."""
    return int(relation[column].sum())


def groupby_sum(relation: np.ndarray, key: str = "key",
                value: str = "value") -> Dict[int, int]:
    """Hash group-by with SUM, returning {group key: sum}."""
    keys = relation[key]
    values = relation[value]
    uniques, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniques), dtype=np.int64)
    np.add.at(sums, inverse, values)
    return {int(k): int(s) for k, s in zip(uniques, sums)}


def grace_hash_join(left: np.ndarray, right: np.ndarray,
                    key: str = "key",
                    partitions: int = 8) -> List[Tuple[int, int, int]]:
    """GRACE partitioned hash join.

    Both inputs are hash-partitioned on ``key``; each partition pair is
    joined with a build (left) / probe (right) hash table — the same
    two-phase structure the simulator charges for. Returns
    ``(key, left value, right value)`` triples, ordered by partition then
    probe order (deterministic).
    """
    if partitions < 1:
        raise ValueError(f"need at least one partition, got {partitions}")
    output: List[Tuple[int, int, int]] = []
    left_parts = [left[left[key] % partitions == p]
                  for p in range(partitions)]
    right_parts = [right[right[key] % partitions == p]
                   for p in range(partitions)]
    for build_part, probe_part in zip(left_parts, right_parts):
        table: Dict[int, List[int]] = {}
        for row in build_part:
            table.setdefault(int(row[key]), []).append(int(row["value"]))
        for row in probe_part:
            for build_value in table.get(int(row[key]), ()):
                output.append(
                    (int(row[key]), build_value, int(row["value"])))
    return output
