"""Reference datacube computation driven by the PipeHash plan.

Computes every group-by of the cube with hash aggregation, following the
pass structure :func:`repro.workloads.pipehash.plan_pipehash` emits: the
root group-by from the raw tuples, children from the root's output (a
child's aggregate is derivable from any parent that contains its
attributes — the property PipeHash exploits).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["cube_group_by", "compute_cube"]

Key = Tuple[int, ...]


def cube_group_by(tuples: np.ndarray, attributes: Sequence[int],
                  measure: str = "measure") -> Dict[Key, int]:
    """SUM group-by over the given dimension columns."""
    if not attributes:
        raise ValueError("a cube group-by needs at least one attribute")
    columns = [tuples[f"d{a}"] for a in attributes]
    stacked = np.stack(columns, axis=1)
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    sums = np.zeros(len(uniques), dtype=np.int64)
    np.add.at(sums, inverse, tuples[measure])
    return {tuple(int(v) for v in key): int(s)
            for key, s in zip(uniques, sums)}


def _roll_up(parent: Dict[Key, int], parent_attrs: Sequence[int],
             child_attrs: Sequence[int]) -> Dict[Key, int]:
    """Aggregate a parent group-by down to a child attribute subset."""
    positions = [parent_attrs.index(a) for a in child_attrs]
    child: Dict[Key, int] = {}
    for key, value in parent.items():
        child_key = tuple(key[p] for p in positions)
        child[child_key] = child.get(child_key, 0) + value
    return child


def compute_cube(tuples: np.ndarray,
                 dims: int = 4) -> Dict[Tuple[int, ...], Dict[Key, int]]:
    """All 2^dims - 1 group-bys, children rolled up from the root.

    Returns {attribute subset: {group key: sum}}.
    """
    from itertools import combinations

    root_attrs = tuple(range(dims))
    root = cube_group_by(tuples, root_attrs)
    cube: Dict[Tuple[int, ...], Dict[Key, int]] = {root_attrs: root}
    for arity in range(dims - 1, 0, -1):
        for attrs in combinations(range(dims), arity):
            cube[attrs] = _roll_up(root, list(root_attrs), list(attrs))
    return cube
