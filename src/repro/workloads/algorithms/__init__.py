"""Reference (semantic) implementations of the eight tasks."""

from .bounded_hash import BoundedHashAggregator, SpillStats
from .apriori import association_rules, frequent_itemsets, support_counts
from .datacube import compute_cube, cube_group_by
from .external_sort import (
    external_sort,
    form_runs,
    merge_runs,
    partition_by_key_range,
)
from .mview import apply_deltas, build_view, maintain_view, partition_deltas
from .records import (
    make_cube_tuples,
    make_relation,
    make_sort_records,
    make_transactions,
)
from .relational import aggregate_sum, grace_hash_join, groupby_sum, select

__all__ = [
    "select", "aggregate_sum", "groupby_sum", "grace_hash_join",
    "external_sort", "form_runs", "merge_runs", "partition_by_key_range",
    "frequent_itemsets", "association_rules", "support_counts",
    "compute_cube", "cube_group_by",
    "build_view", "partition_deltas", "apply_deltas", "maintain_view",
    "make_relation", "make_sort_records", "make_transactions",
    "make_cube_tuples",
    "BoundedHashAggregator", "SpillStats",
]
