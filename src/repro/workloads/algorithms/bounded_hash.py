"""Memory-bounded hash aggregation with overflow spilling.

The datacube cost model claims that once a disk's partial hash table
cannot hold its working set, "essentially every insertion is flushed" —
the ``SPILL_FACTOR`` amplification of `repro.workloads.pipehash`. This
module makes that claim *measurable*: a real hash aggregator with a hard
entry budget that evicts-and-spills on overflow, counting exactly how
many entries it ships. Tests compare the measured spill volume against
the model across capacity/working-set ratios.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["SpillStats", "BoundedHashAggregator"]


@dataclass
class SpillStats:
    """What an aggregation run shipped versus absorbed."""

    insertions: int = 0
    in_place_updates: int = 0
    spilled_entries: int = 0

    @property
    def spill_amplification(self) -> float:
        """Spilled entries per *stable-table* entry (the model's factor).

        Meaningful after :meth:`BoundedHashAggregator.drain`; 1.0 means
        everything fit, values approaching ``updates+insertions`` per
        entry mean the table thrashed.
        """
        total = self.spilled_entries
        return total / max(1, self._stable_entries)

    _stable_entries: int = 1


class BoundedHashAggregator:
    """SUM aggregation limited to ``capacity`` resident entries.

    When a new key arrives into a full table, the least-recently-updated
    entry is evicted to the spill stream (the front-end, in the cube's
    case). The same key may be evicted and re-inserted many times — the
    source of the amplification.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.table: "OrderedDict[int, int]" = OrderedDict()
        self.stats = SpillStats()
        self._spilled: List[Tuple[int, int]] = []

    def add(self, key: int, value: int) -> None:
        if key in self.table:
            self.table[key] += value
            self.table.move_to_end(key)
            self.stats.in_place_updates += 1
            return
        if len(self.table) >= self.capacity:
            victim, partial = self.table.popitem(last=False)
            self._spilled.append((victim, partial))
            self.stats.spilled_entries += 1
        self.table[key] = value
        self.stats.insertions += 1

    def consume(self, pairs: Iterable[Tuple[int, int]]) -> None:
        for key, value in pairs:
            self.add(key, value)

    def drain(self) -> Dict[int, int]:
        """Flush everything and merge spill stream + residents.

        Returns the exact global aggregate (the spill receiver's merge),
        and finalizes the statistics.
        """
        merged: Dict[int, int] = {}
        for key, value in self._spilled:
            merged[key] = merged.get(key, 0) + value
        for key, value in self.table.items():
            merged[key] = merged.get(key, 0) + value
            self.stats.spilled_entries += 1  # final table flush
        self.stats._stable_entries = max(1, len(merged))
        self._spilled.clear()
        self.table.clear()
        return merged
