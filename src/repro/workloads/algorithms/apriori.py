"""Reference Apriori association-rule miner (Agrawal et al., SIGMOD'93).

Level-wise candidate generation with support counting; one full pass
over the transactions per itemset size — exactly the multi-pass scan
structure the simulated dmine task charges for. Small-scale but complete:
candidate generation uses the standard prefix-join + prune.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple

__all__ = ["frequent_itemsets", "association_rules", "support_counts"]

Itemset = Tuple[int, ...]


def support_counts(transactions: Sequence[Tuple[int, ...]],
                   candidates: List[Itemset]) -> Counter:
    """Count how many transactions contain each candidate itemset."""
    counts: Counter = Counter()
    candidate_set = set(candidates)
    max_len = max((len(c) for c in candidates), default=0)
    for transaction in transactions:
        items = transaction
        if len(items) < max_len:
            continue
        for combo in combinations(items, max_len):
            if combo in candidate_set:
                counts[combo] += 1
    return counts


def _generate_candidates(frequent: List[Itemset]) -> List[Itemset]:
    """Prefix-join frequent (k)-itemsets into (k+1)-candidates, pruned."""
    frequent_set = set(frequent)
    candidates = []
    for i, a in enumerate(frequent):
        for b in frequent[i + 1:]:
            if a[:-1] == b[:-1] and a[-1] < b[-1]:
                candidate = a + (b[-1],)
                if all(candidate[:j] + candidate[j + 1:] in frequent_set
                       for j in range(len(candidate))):
                    candidates.append(candidate)
    return candidates


def frequent_itemsets(transactions: Sequence[Tuple[int, ...]],
                      minsup: float,
                      max_size: int = 3) -> Dict[Itemset, int]:
    """All itemsets up to ``max_size`` with support >= ``minsup``."""
    if not 0 < minsup <= 1:
        raise ValueError(f"minsup must be in (0, 1], got {minsup}")
    threshold = minsup * len(transactions)
    result: Dict[Itemset, int] = {}

    counts: Counter = Counter()
    for transaction in transactions:
        for item in transaction:
            counts[(item,)] += 1
    frequent = sorted(c for c, n in counts.items() if n >= threshold)
    result.update({c: counts[c] for c in frequent})

    size = 2
    while frequent and size <= max_size:
        candidates = _generate_candidates(frequent)
        if not candidates:
            break
        counts = support_counts(transactions, candidates)
        frequent = sorted(c for c in candidates
                          if counts[c] >= threshold)
        result.update({c: counts[c] for c in frequent})
        size += 1
    return result


def association_rules(itemsets: Dict[Itemset, int],
                      min_confidence: float
                      ) -> List[Tuple[Itemset, Itemset, float]]:
    """Rules (antecedent -> consequent, confidence) from frequent sets."""
    rules = []
    for itemset, support in itemsets.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent in combinations(itemset, size):
                antecedent_support = itemsets.get(antecedent)
                if not antecedent_support:
                    continue
                confidence = support / antecedent_support
                if confidence >= min_confidence:
                    consequent = tuple(
                        i for i in itemset if i not in antecedent)
                    rules.append((antecedent, consequent, confidence))
    return rules
