"""Reference two-phase external sort (run formation + multi-way merge).

Mirrors the simulated task's structure exactly: a partitioning step
splits records across workers by key range; each worker forms
memory-bounded sorted runs; a final heap merge produces the sorted
output. Run counts follow the same memory arithmetic the trace generator
uses, so tests can cross-check both.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence

import numpy as np

__all__ = ["partition_by_key_range", "form_runs", "merge_runs",
           "external_sort"]


def partition_by_key_range(records: np.ndarray, workers: int,
                           key: str = "key",
                           key_space: int = 2 ** 40) -> List[np.ndarray]:
    """Split records into ``workers`` contiguous key ranges."""
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    bounds = [key_space * (w + 1) // workers for w in range(workers)]
    parts: List[np.ndarray] = []
    lo = 0
    for hi in bounds:
        mask = (records[key] >= lo) & (records[key] < hi)
        parts.append(records[mask])
        lo = hi
    return parts


def form_runs(records: np.ndarray, run_records: int,
              key: str = "key") -> List[np.ndarray]:
    """Sort memory-sized chunks into runs (phase 1 at one worker)."""
    if run_records < 1:
        raise ValueError(f"run size must be >= 1, got {run_records}")
    runs = []
    for start in range(0, len(records), run_records):
        chunk = records[start:start + run_records]
        runs.append(chunk[np.argsort(chunk[key], kind="stable")])
    return runs


def merge_runs(runs: Sequence[np.ndarray],
               key: str = "key") -> np.ndarray:
    """K-way heap merge of sorted runs (phase 2 at one worker)."""
    if not runs:
        return np.rec.fromarrays([[], []], names=(key, "payload"))
    heap = []
    for run_index, run in enumerate(runs):
        if len(run):
            heap.append((int(run[key][0]), run_index, 0))
    heapq.heapify(heap)
    out_indices: List[tuple] = []
    while heap:
        _, run_index, position = heapq.heappop(heap)
        out_indices.append((run_index, position))
        run = runs[run_index]
        if position + 1 < len(run):
            heapq.heappush(
                heap, (int(run[key][position + 1]), run_index, position + 1))
    return np.rec.array(np.concatenate(
        [runs[r][p:p + 1] for r, p in out_indices]))


def external_sort(records: np.ndarray, workers: int, run_records: int,
                  key: str = "key",
                  key_space: int = 2 ** 40) -> List[np.ndarray]:
    """Full two-phase distributed sort; returns per-worker sorted output.

    Concatenating the worker outputs in order yields the globally sorted
    dataset (worker ranges are contiguous in key space).
    """
    parts = partition_by_key_range(records, workers, key, key_space)
    return [merge_runs(form_runs(part, run_records, key), key)
            for part in parts]
