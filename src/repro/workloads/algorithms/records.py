"""Synthetic record generators matching the Table 2 dataset shapes.

Used by the reference algorithm implementations (small-scale semantic
validation) and the examples. Generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "make_relation", "make_sort_records", "make_transactions",
    "make_cube_tuples",
]


def make_relation(count: int, distinct_keys: int, seed: int = 0,
                  payload: int = 1000) -> np.ndarray:
    """A relation of (key, value) rows: uniform keys, random values."""
    if count < 0 or distinct_keys < 1:
        raise ValueError("count must be >= 0 and distinct_keys >= 1")
    rng = np.random.default_rng(seed)
    return np.rec.fromarrays(
        [rng.integers(0, distinct_keys, size=count, dtype=np.int64),
         rng.integers(0, payload, size=count, dtype=np.int64)],
        names=("key", "value"))


def make_sort_records(count: int, seed: int = 0,
                      key_space: int = 2 ** 40) -> np.ndarray:
    """Records with uniformly distributed sort keys (the sort dataset)."""
    rng = np.random.default_rng(seed)
    return np.rec.fromarrays(
        [rng.integers(0, key_space, size=count, dtype=np.int64),
         np.arange(count, dtype=np.int64)],
        names=("key", "payload"))


def make_transactions(count: int, items: int, avg_items: int = 4,
                      seed: int = 0,
                      hot_fraction: float = 0.02) -> List[Tuple[int, ...]]:
    """Retail transactions: mostly-uniform items with a popular hot set.

    A small hot set makes some itemsets frequent so Apriori has work to
    do at realistic minimum supports.
    """
    rng = np.random.default_rng(seed)
    hot = max(1, int(items * hot_fraction))
    transactions: List[Tuple[int, ...]] = []
    sizes = rng.poisson(avg_items - 1, size=count) + 1
    for size in sizes:
        picks = []
        for _ in range(size):
            if rng.random() < 0.5:
                picks.append(int(rng.integers(0, hot)))
            else:
                picks.append(int(rng.integers(0, items)))
        transactions.append(tuple(sorted(set(picks))))
    return transactions


def make_cube_tuples(count: int, cardinalities: Sequence[int],
                     seed: int = 0) -> np.ndarray:
    """Fact tuples with one column per cube dimension plus a measure."""
    rng = np.random.default_rng(seed)
    columns = [rng.integers(0, card, size=count, dtype=np.int64)
               for card in cardinalities]
    columns.append(rng.integers(0, 100, size=count, dtype=np.int64))
    names = tuple(f"d{i}" for i in range(len(cardinalities))) + ("measure",)
    return np.rec.fromarrays(columns, names=names)
