"""Dataset descriptors for the eight tasks (paper Table 2).

Every experiment uses these datasets: 16 GB for all tasks except join
(32 GB) and materialized views (15 GB). A descriptor carries the logical
shape (tuple size, counts, selectivities) so task builders can compute
data volumes, and a ``scaled`` constructor shrinks the byte volumes for
faster simulation while keeping every bandwidth/compute *ratio* intact
(memory-dependent algorithm parameters are scaled alongside — see
``repro.workloads.tasks``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import expm1
from typing import Dict

__all__ = ["DatasetSpec", "TABLE2", "dataset_for"]

GB = 1_000_000_000
MB = 1_000_000


@dataclass(frozen=True)
class DatasetSpec:
    """Logical description of one task's dataset.

    ``params`` carries task-specific numbers (selectivity, distinct
    counts, dimension cardinalities, ...) keyed by name.
    """

    task: str
    total_bytes: int
    tuple_bytes: int
    description: str
    params: Dict[str, float] = field(default_factory=dict)
    scale: float = 1.0

    @property
    def tuple_count(self) -> int:
        return self.total_bytes // self.tuple_bytes

    def scaled(self, scale: float) -> "DatasetSpec":
        """Shrink byte volumes by ``scale`` (1.0 = the paper's size)."""
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        new_params = dict(self.params)
        # Counts that represent data volume scale; densities don't.
        for key in ("distinct", "transactions", "items_total",
                    "derived_bytes", "delta_bytes", "base_bytes"):
            if key in new_params:
                new_params[key] = new_params[key] * scale
        return replace(
            self,
            total_bytes=int(self.total_bytes * scale),
            params=new_params,
            scale=self.scale * scale,
        )


def _expected_distinct(distinct: float, samples: float) -> float:
    """Expected number of distinct values hit by ``samples`` draws."""
    if distinct <= 0 or samples <= 0:
        return 0.0
    return distinct * -expm1(-samples / distinct)


#: Table 2, verbatim.
TABLE2: Dict[str, DatasetSpec] = {
    "select": DatasetSpec(
        task="select", total_bytes=16 * GB, tuple_bytes=64,
        description="268 million, 64-byte tuples, 1% selectivity",
        params={"selectivity": 0.01}),
    "aggregate": DatasetSpec(
        task="aggregate", total_bytes=16 * GB, tuple_bytes=64,
        description="268 million, 64-byte tuples, SUM function",
        params={"result_bytes": 64}),
    "groupby": DatasetSpec(
        task="groupby", total_bytes=16 * GB, tuple_bytes=64,
        description="268 million, 64-byte tuples, 13.5 million distinct",
        params={"distinct": 13_500_000, "group_entry_bytes": 32}),
    "dcube": DatasetSpec(
        task="dcube", total_bytes=16 * GB, tuple_bytes=32,
        description=("536 million, 32-byte tuples, 4 dimensions, "
                     "1%/0.1%/0.01%/0.001% distinct values"),
        params={"dims": 4, "density_1": 0.01, "density_2": 0.001,
                "density_3": 0.0001, "density_4": 0.00001,
                "root_table_bytes": 695 * MB,
                "children_total_bytes": 2_300 * MB,
                "group_entry_bytes": 32}),
    "sort": DatasetSpec(
        task="sort", total_bytes=16 * GB, tuple_bytes=100,
        description="100-byte tuples, 10-byte uniformly distributed keys",
        params={"key_bytes": 10}),
    "join": DatasetSpec(
        task="join", total_bytes=32 * GB, tuple_bytes=64,
        description=("64-byte tuples, 4-byte uniform keys, 32-byte "
                     "tuples after projection"),
        params={"key_bytes": 4, "projected_bytes": 32,
                "output_fraction": 0.25}),
    "dmine": DatasetSpec(
        task="dmine", total_bytes=16 * GB, tuple_bytes=53,
        description=("300 million transactions, 1 million items, "
                     "avg 4 items/transaction, 0.1% minsup"),
        params={"transactions": 300_000_000, "items": 1_000_000,
                "avg_items": 4, "minsup": 0.001, "passes": 3,
                "counter_bytes_per_worker": int(5.4 * MB)}),
    "mview": DatasetSpec(
        task="mview", total_bytes=15 * GB, tuple_bytes=32,
        description=("32-byte tuples, 4 GB derived relations, "
                     "1 GB deltas"),
        params={"derived_bytes": 4 * GB, "delta_bytes": 1 * GB,
                "base_bytes": 10 * GB}),
}

TASKS = tuple(TABLE2)


def dataset_for(task: str, scale: float = 1.0) -> DatasetSpec:
    """The Table 2 dataset for ``task``, optionally scaled down."""
    if task not in TABLE2:
        raise KeyError(
            f"unknown task {task!r}; known tasks: {', '.join(TABLE2)}")
    return TABLE2[task].scaled(scale)


__all__.append("TASKS")
__all__.append("_expected_distinct")
