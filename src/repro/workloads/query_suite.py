"""A TPC-D-flavoured suite of composite query plans.

The related work the paper cites (Tamura et al.) evaluated clusters on
TPC-D; this suite provides comparable *shapes* — pricing-summary,
shipping-priority and revenue-band queries — as logical plans over the
Table 2 fact-table dimensions, compiled per architecture by
``repro.workloads.queries``. Not the TPC-D schema (no multi-way joins in
the plan language); the point is composite scan/filter/aggregate/sort
pipelines with realistic volume drops.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .queries import Filter, GroupBy, OrderBy, Project, QueryPlan, Scan

__all__ = ["QUERY_SUITE", "query_plan", "suite_names"]

#: The 16 GB fact table of Table 2 (268 M x 64 B, rounded as stored).
FACT = Scan(rows=250_000_000, row_bytes=64)

QUERY_SUITE: Dict[str, QueryPlan] = {
    # Q1-like: full-scan pricing summary — tiny group count, heavy scan.
    "pricing-summary": QueryPlan(
        name="pricing-summary",
        scan=FACT,
        operators=(
            Filter(selectivity=0.98),          # shipdate cutoff
            GroupBy(groups=6, entry_bytes=64),  # returnflag x linestatus
            OrderBy(),
        )),
    # Q3-like: selective filter, wide group-by, ordered output.
    "shipping-priority": QueryPlan(
        name="shipping-priority",
        scan=FACT,
        operators=(
            Filter(selectivity=0.05),
            GroupBy(groups=1_000_000, entry_bytes=32),
            OrderBy(),
        )),
    # Q6-like: pure filtered aggregate — the Active Disk sweet spot.
    "revenue-band": QueryPlan(
        name="revenue-band",
        scan=FACT,
        operators=(
            Filter(selectivity=0.015),
            Project(row_bytes=16),
            GroupBy(groups=1, entry_bytes=64),
        )),
    # Top-k style: project early, order everything that survives.
    "discount-outliers": QueryPlan(
        name="discount-outliers",
        scan=FACT,
        operators=(
            Filter(selectivity=0.002),
            Project(row_bytes=32),
            OrderBy(),
        )),
}


def suite_names() -> Tuple[str, ...]:
    return tuple(QUERY_SUITE)


def query_plan(name: str) -> QueryPlan:
    if name not in QUERY_SUITE:
        raise KeyError(
            f"unknown query {name!r}; suite: {', '.join(QUERY_SUITE)}")
    return QUERY_SUITE[name]
