"""A miniature query planner: logical plans compiled to task programs.

The eight benchmark tasks are fixed operator shapes. Real decision
support composes them — the paper's motivating queries are of the form
"scan the fact table, filter, aggregate by key, order the result". This
module provides that composition layer:

* a logical plan is a chain of operators (:class:`Scan` ->
  :class:`Filter` / :class:`Project` / :class:`GroupBy` /
  :class:`OrderBy`), each transforming an estimated *cardinality* and
  *row width*;
* :func:`compile_plan` walks the chain, propagates the volume estimates
  exactly the way a textbook optimizer does, and emits the
  architecture-neutral phases the machines execute — a scan phase with
  the pipelined per-byte costs of all stacked row operators, plus a
  repartition/sort phase when an :class:`OrderBy` (or partitioned
  :class:`GroupBy`) needs one.

Costs reuse the calibrated task constants, so a compiled query is
directly comparable to the built-in tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple, Union

from ..arch.config import ArchConfig
from ..arch.program import CostComponent, Phase, TaskProgram
from ..tracegen.costs import (
    GROUPBY_HASH_NS,
    GROUPBY_MERGE_NS,
    SELECT_FILTER_NS,
    SORT_APPEND_NS,
    SORT_MERGE_NS,
    SORT_PARTITION_NS,
    sort_cpu_ns,
)
from .tasks.base import TaskContext
from .tasks.sort import RUN_BUFFER_FRACTION
from .datasets import DatasetSpec

__all__ = ["Scan", "Filter", "Project", "GroupBy", "OrderBy",
           "QueryPlan", "compile_plan"]


@dataclass(frozen=True)
class Scan:
    """Leaf: read a relation of ``rows`` tuples of ``row_bytes`` each."""

    rows: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.rows < 0 or self.row_bytes <= 0:
            raise ValueError("Scan needs rows >= 0 and row_bytes > 0")

    @property
    def bytes(self) -> int:
        return self.rows * self.row_bytes


@dataclass(frozen=True)
class Filter:
    """Row-pipelined predicate keeping ``selectivity`` of its input."""

    selectivity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(
                f"selectivity out of [0, 1]: {self.selectivity}")


@dataclass(frozen=True)
class Project:
    """Row-pipelined projection to ``row_bytes`` wide tuples."""

    row_bytes: int

    def __post_init__(self) -> None:
        if self.row_bytes <= 0:
            raise ValueError(f"bad projected width: {self.row_bytes}")


@dataclass(frozen=True)
class GroupBy:
    """Hash aggregation into ``groups`` result rows of ``entry_bytes``."""

    groups: int
    entry_bytes: int = 32

    def __post_init__(self) -> None:
        if self.groups < 1 or self.entry_bytes < 1:
            raise ValueError("GroupBy needs groups >= 1, entry_bytes >= 1")


@dataclass(frozen=True)
class OrderBy:
    """Global sort of whatever reaches it (repartition + merge)."""


Operator = Union[Filter, Project, GroupBy, OrderBy]


@dataclass(frozen=True)
class QueryPlan:
    """A scan followed by a chain of operators, applied in order."""

    name: str
    scan: Scan
    operators: Tuple[Operator, ...] = ()

    def __post_init__(self) -> None:
        seen_blocking = False
        for op in self.operators:
            if isinstance(op, OrderBy) and seen_blocking:
                raise ValueError(
                    f"{self.name}: only one OrderBy per plan is supported")
            if isinstance(op, OrderBy):
                seen_blocking = True


def compile_plan(plan: QueryPlan, config: ArchConfig,
                 scale: float = 1.0) -> TaskProgram:
    """Compile a logical plan to phases for ``config``.

    Volume propagation: filters multiply cardinality, projections change
    row width, group-bys collapse cardinality to the group count. The
    pipelined operators' per-byte costs stack onto the scan phase; an
    OrderBy over the (possibly reduced) intermediate emits sort phases
    over exactly that volume. The final operator's output streams to
    the front-end.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rows = plan.scan.rows * scale
    width = plan.scan.row_bytes
    scan_bytes = int(plan.scan.bytes * scale)

    pipeline: List[CostComponent] = []
    phases: List[Phase] = []
    order_volume: Optional[int] = None
    frontend_cpu = 0.0

    for op in plan.operators:
        if isinstance(op, Filter):
            pipeline.append(CostComponent("filter", SELECT_FILTER_NS))
            rows *= op.selectivity
        elif isinstance(op, Project):
            pipeline.append(CostComponent("project", 10.0))
            width = op.row_bytes
        elif isinstance(op, GroupBy):
            pipeline.append(CostComponent("hash", GROUPBY_HASH_NS))
            rows = min(rows, op.groups * scale)
            width = op.entry_bytes
            frontend_cpu = GROUPBY_MERGE_NS
        elif isinstance(op, OrderBy):
            order_volume = max(1, int(rows * width))
        else:  # pragma: no cover - the union is closed
            raise TypeError(f"unknown operator {op!r}")

    result_bytes = max(1, int(rows * width))

    if order_volume is None:
        phases.append(Phase(
            name="scan",
            read_bytes_total=scan_bytes,
            cpu=tuple(pipeline),
            frontend_fraction=min(1.0, result_bytes / max(1, scan_bytes)),
            frontend_cpu_ns_per_byte=frontend_cpu,
        ))
        return TaskProgram(task=plan.name, phases=tuple(phases))

    # Blocking OrderBy: the scan stage materializes the intermediate,
    # then a distributed sort repartitions it.
    phases.append(Phase(
        name="scan",
        read_bytes_total=scan_bytes,
        cpu=tuple(pipeline),
        write_fraction=min(1.0, order_volume / max(1, scan_bytes)),
    ))
    context = TaskContext(config=config,
                          dataset=DatasetSpec(
                              task=plan.name, total_bytes=order_volume,
                              tuple_bytes=width,
                              description="query intermediate"),
                          scale=1.0)
    run_bytes = max(1, int(context.worker_memory * RUN_BUFFER_FRACTION))
    runs = max(1, ceil(context.per_worker_bytes / run_bytes))
    smp = config.arch == "smp"
    phases.append(Phase(
        name="order",
        read_bytes_total=order_volume,
        cpu=(CostComponent("partitioner", SORT_PARTITION_NS),),
        shuffle_fraction=1.0,
        recv=(CostComponent("append", SORT_APPEND_NS),
              CostComponent("sort", sort_cpu_ns(runs))),
        recv_write_fraction=1.0,
        split_disk_groups=smp,
    ))
    phases.append(Phase(
        name="merge",
        read_bytes_total=order_volume,
        cpu=(CostComponent("merge", SORT_MERGE_NS),),
        read_streams=runs,
        frontend_fraction=1.0,
        frontend_cpu_ns_per_byte=frontend_cpu,
        split_disk_groups=smp,
    ))
    return TaskProgram(task=plan.name, phases=tuple(phases))
