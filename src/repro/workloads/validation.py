"""Validate simulated dataflow volumes against the real algorithms.

The task builders assert things like "select forwards 1 % of its input"
or "sort repartitions everything, with 1/W staying local". Those claims
are *measurable*: run the reference implementations on small synthetic
datasets shaped like Table 2 and count actual bytes. This module does
the counting; the test suite compares the measurements against the
fractions the simulator charges, closing the loop between
``repro.workloads.algorithms`` (semantics) and ``repro.workloads.tasks``
(costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .algorithms import (
    external_sort,
    form_runs,
    grace_hash_join,
    groupby_sum,
    make_relation,
    make_sort_records,
    partition_by_key_range,
    select,
)

__all__ = [
    "MeasuredShuffle",
    "measure_select_fraction",
    "measure_sort_shuffle",
    "measure_sort_runs",
    "measure_join_volumes",
    "measure_groupby_result",
]


@dataclass(frozen=True)
class MeasuredShuffle:
    """Bytes leaving vs. staying per worker in a real repartitioning."""

    total_bytes: int
    crossing_bytes: int

    @property
    def crossing_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.crossing_bytes / self.total_bytes


def measure_select_fraction(count: int = 50_000, payload: int = 1_000,
                            cut: int = 10, seed: int = 0) -> float:
    """Measured selectivity of the reference select at a 1 %-style cut."""
    relation = make_relation(count, distinct_keys=97, seed=seed,
                             payload=payload)
    matched = select(relation, lambda r: r.value < cut)
    return len(matched) / max(1, len(relation))


def measure_sort_shuffle(count: int = 20_000, workers: int = 8,
                         record_bytes: int = 100,
                         seed: int = 0) -> MeasuredShuffle:
    """How much of the dataset actually crosses workers in sort's P1.

    Records start evenly distributed over workers; a record "crosses"
    when its key-range owner differs from its origin. With uniform keys
    the crossing fraction converges to (W-1)/W — the quantity the
    simulator's shuffle model assumes.
    """
    records = make_sort_records(count, seed=seed)
    origin = np.arange(count) % workers
    parts = partition_by_key_range(records, workers)
    crossing = 0
    for owner, part in enumerate(parts):
        origin_of_part = origin[np.isin(records.payload, part.payload)]
        crossing += int((origin_of_part != owner).sum())
    return MeasuredShuffle(total_bytes=count * record_bytes,
                           crossing_bytes=crossing * record_bytes)


def measure_sort_runs(count: int, run_records: int,
                      seed: int = 0) -> int:
    """Actual run count the reference run-formation produces."""
    records = make_sort_records(count, seed=seed)
    return len(form_runs(records, run_records=run_records))


def measure_join_volumes(count: int = 10_000, distinct: int = 500,
                         tuple_bytes: int = 64, projected_bytes: int = 32,
                         seed: int = 0) -> Dict[str, float]:
    """Measured projection and output ratios of the reference join.

    Returns fractions of the *input byte volume*: ``projected`` (what a
    projecting scan would shuffle) and ``output`` (join result bytes,
    with output tuples at the projected width).
    """
    half = count // 2
    left = make_relation(half, distinct, seed=seed)
    right = make_relation(count - half, distinct, seed=seed + 1)
    matches = grace_hash_join(left, right)
    input_bytes = count * tuple_bytes
    projected = count * projected_bytes
    output = len(matches) * projected_bytes
    return {
        "projected": projected / input_bytes,
        "output": output / input_bytes,
        "matches": float(len(matches)),
    }


def measure_groupby_result(count: int = 30_000, distinct: int = 400,
                           entry_bytes: int = 32, tuple_bytes: int = 64,
                           seed: int = 0) -> float:
    """Measured result-to-input byte ratio of the reference group-by."""
    relation = make_relation(count, distinct, seed=seed)
    groups = groupby_sum(relation)
    return (len(groups) * entry_bytes) / (count * tuple_bytes)
