"""Association-rule mining (Apriori, Agrawal et al. SIGMOD'93).

Three candidate-generation passes over the 300 M-transaction dataset;
each pass counts candidate itemsets in a ~5.4 MB counter table (the
paper's measured size for 1 M items at 0.1 % minsup) and then merges
counters globally. The counter tables are tiny relative to any
configuration's memory, which is why dmine shows no memory sensitivity.

Counter merging follows each architecture's natural collective:

* **Active Disks**: disklets stream partial counters to the front-end,
  which merges them in its 1 GB of memory (the paper's stated use of
  front-end memory for partial results);
* **clusters**: an MPI-style reduce-and-broadcast among the nodes
  (counters cross node links, not the front-end's thin pipe);
* **SMP**: partial counters land in shared memory at the collector.
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import DMINE_COUNT_NS, DMINE_MERGE_NS
from .base import TaskContext, register_task

__all__ = ["build_dmine"]


@register_task("dmine")
def build_dmine(context: TaskContext) -> TaskProgram:
    dataset = context.dataset
    passes = int(context.param("passes"))
    counter_bytes = max(
        512, int(context.param("counter_bytes_per_worker") * context.scale))
    phases = []
    for p in range(passes):
        if context.arch == "cluster":
            phases.append(Phase(
                name=f"pass{p + 1}",
                read_bytes_total=dataset.total_bytes,
                cpu=(CostComponent("count", DMINE_COUNT_NS),),
                shuffle_fixed_per_worker=2 * counter_bytes,
                recv=(CostComponent("merge", DMINE_MERGE_NS),),
            ))
        else:
            phases.append(Phase(
                name=f"pass{p + 1}",
                read_bytes_total=dataset.total_bytes,
                cpu=(CostComponent("count", DMINE_COUNT_NS),),
                frontend_fixed_per_worker=counter_bytes,
                frontend_cpu_ns_per_byte=DMINE_MERGE_NS,
            ))
    return TaskProgram(task="dmine", phases=tuple(phases))
