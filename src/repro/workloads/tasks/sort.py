"""External sort: two-phase distributed sort (NOW-sort lineage).

Phase 1 ("sort"): every worker scans its share, the *partitioner*
classifies each tuple by key range and streams it to the owner worker;
the owner's *append* collects arriving tuples into run buffers, *sort*
forms sorted runs, and the runs are written back to storage. The entire
dataset is repartitioned — this is the communication-intensive phase that
makes sort the paper's stress test for the interconnect (Figure 3) and
for direct disk-to-disk communication (Figure 5).

Phase 2 ("merge"): every worker reads its runs (one interleaved
sequential stream per run — more runs than drive cache segments means
the merge pays positioning costs) and writes the sorted output.

Run length follows the paper's sizing: ~78 % of worker memory per run
(32 MB disks used 25 MB runs), so more memory means fewer, longer runs —
slightly cheaper CPU (Section 4.3's 7 %) and a friendlier merge pattern.

On the SMP, drives are split into separate read and write groups and the
repartitioning happens through shared memory, so the dataset crosses the
FC loop four times (read + write runs + read runs + write output) —
versus once (the shuffle) on Active Disks.
"""

from __future__ import annotations

from math import ceil

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import (
    SORT_APPEND_NS,
    SORT_MERGE_NS,
    SORT_PARTITION_NS,
    sort_cpu_ns,
)
from .base import TaskContext, register_task

__all__ = ["build_sort", "run_count"]

#: Fraction of worker memory usable as a run buffer (paper: 25 MB runs
#: on 32 MB disks).
RUN_BUFFER_FRACTION = 0.78


def run_count(context: TaskContext) -> int:
    """Number of sorted runs each worker forms in phase 1."""
    run_bytes = max(1, int(context.worker_memory * RUN_BUFFER_FRACTION))
    return max(1, ceil(context.per_worker_bytes / run_bytes))


@register_task("sort")
def build_sort(context: TaskContext) -> TaskProgram:
    total = context.dataset.total_bytes
    runs = run_count(context)
    smp = context.arch == "smp"
    return TaskProgram(task="sort", phases=(
        Phase(
            name="sort",
            read_bytes_total=total,
            cpu=(CostComponent("partitioner", SORT_PARTITION_NS),),
            shuffle_fraction=1.0,
            recv=(
                CostComponent("append", SORT_APPEND_NS),
                CostComponent("sort", sort_cpu_ns(runs)),
            ),
            recv_write_fraction=1.0,
            split_disk_groups=smp,
        ),
        Phase(
            name="merge",
            read_bytes_total=total,
            cpu=(CostComponent("merge", SORT_MERGE_NS),),
            write_fraction=1.0,
            read_streams=runs,
            split_disk_groups=smp,
        ),
    ))
