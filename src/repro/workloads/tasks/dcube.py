"""Datacube (Gray et al.) via PipeHash (Agarwal et al., VLDB'96).

The planner in :mod:`repro.workloads.pipehash` schedules the cube's 15
group-bys into memory-feasible passes; this builder turns each pass into
a phase:

* the **root pass** scans the raw input, hashes every tuple into the
  4-attribute root table, and writes that table out. When the root does
  not fit the machine's aggregate memory (the 16-disk / 32 MB case),
  overflowing partial tables are forwarded to the front-end —
  ``SPILL_FACTOR`` times the table size in traffic — and merged there.
* each **child pass** scans the root group-by's output and pipelines a
  bin-packed subset of the 14 child group-bys, writing their tables.

Memory effects reproduced: 16-disk configurations gain ~35 % from 64 MB
disks (no more front-end spill + fewer passes); 64-disk configurations
drop from 3 passes to 2 (the Figure 4 spike); beyond that the cube is
memory-insensitive.
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import DCUBE_HASH_NS, DCUBE_MERGE_NS, DCUBE_PARTITION_NS
from ..pipehash import PipeHashPlan, plan_pipehash
from .base import TaskContext, register_task

__all__ = ["build_dcube", "dcube_plan"]

#: Child passes hash each root entry into every group-by of the pass's
#: pipeline; the multiplier reflects that fan-out relative to the root
#: pass's single-table hashing.
CHILD_PIPELINE_CPU_FACTOR = 2.3


def dcube_plan(context: TaskContext) -> PipeHashPlan:
    """The PipeHash schedule for this configuration (scaled)."""
    root_bytes = int(context.param("root_table_bytes") * context.scale)
    return plan_pipehash(
        input_bytes=context.dataset.total_bytes,
        root_table_bytes=root_bytes,
        aggregate_memory=context.aggregate_memory,
        dims=int(context.param("dims")),
    )


@register_task("dcube")
def build_dcube(context: TaskContext) -> TaskProgram:
    plan = dcube_plan(context)
    cluster = context.arch == "cluster"
    phases = []
    for i, pass_plan in enumerate(plan.passes):
        read = max(1, pass_plan.read_bytes)
        if pass_plan.scans_raw_input and cluster:
            # Clusters hash-partition the input so each node owns a
            # partition of the root table (nodes can only address their
            # own disk, so co-locating table and tuples needs a shuffle).
            phases.append(Phase(
                name=f"pass{i + 1}",
                read_bytes_total=read,
                cpu=(CostComponent("partition", DCUBE_PARTITION_NS),),
                shuffle_fraction=1.0,
                recv=(CostComponent("hash", DCUBE_HASH_NS),),
                recv_write_fraction=pass_plan.write_bytes / read,
            ))
            continue
        if pass_plan.scans_raw_input:
            cpu = (CostComponent("hash", DCUBE_HASH_NS),)
        else:
            cpu = (CostComponent(
                "pipeline",
                DCUBE_HASH_NS * CHILD_PIPELINE_CPU_FACTOR),)
        phases.append(Phase(
            name=f"pass{i + 1}",
            read_bytes_total=read,
            cpu=cpu,
            write_fraction=pass_plan.write_bytes / read,
            frontend_fraction=pass_plan.spill_bytes / read,
            frontend_cpu_ns_per_byte=(
                DCUBE_MERGE_NS if pass_plan.spill_bytes else 0.0),
        ))
    return TaskProgram(task="dcube", phases=tuple(phases))
