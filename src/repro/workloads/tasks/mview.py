"""Materialized-view maintenance: apply 1 GB of deltas to 4 GB of views.

Phase 1 ("propagate") scans the base relations plus the delta stream
(11 GB of the 15 GB dataset), computes which derived tuples each delta
affects, and repartitions the affected updates to the workers that own
the corresponding view partitions — a large-fraction repartitioning,
which is why mview joins sort and join in the direct disk-to-disk
communication group (Figure 5).

Phase 2 ("refresh") reads the derived relations, merges the staged
updates in, and writes the refreshed views (derived + absorbed deltas).
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import MVIEW_APPLY_NS, MVIEW_MERGE_NS, MVIEW_SCAN_NS
from .base import TaskContext, register_task

__all__ = ["build_mview"]


@register_task("mview")
def build_mview(context: TaskContext) -> TaskProgram:
    # Volumes are already scaled inside the dataset parameters.
    base_bytes = int(context.param("base_bytes"))
    delta_bytes = int(context.param("delta_bytes"))
    derived_bytes = int(context.param("derived_bytes"))
    propagate_read = base_bytes + delta_bytes
    # Affected updates: every delta joined against the base produces
    # roughly 4 update records per delta tuple (one per derived view).
    update_bytes = min(propagate_read, 4 * delta_bytes + delta_bytes)
    shuffle_fraction = update_bytes / propagate_read
    smp = context.arch == "smp"
    return TaskProgram(task="mview", phases=(
        Phase(
            name="propagate",
            read_bytes_total=propagate_read,
            cpu=(CostComponent("match", MVIEW_SCAN_NS),),
            shuffle_fraction=shuffle_fraction,
            recv=(CostComponent("apply", MVIEW_APPLY_NS),),
            recv_write_fraction=1.0,
            split_disk_groups=smp,
        ),
        Phase(
            name="refresh",
            read_bytes_total=derived_bytes + update_bytes,
            cpu=(CostComponent("merge", MVIEW_MERGE_NS),),
            write_fraction=derived_bytes / (derived_bytes + update_bytes),
            split_disk_groups=smp,
        ),
    ))
