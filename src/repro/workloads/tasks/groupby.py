"""SQL group-by: hash aggregation into 13.5 million groups.

Each worker aggregates its share into a local hash table and ships the
partial group table to the front-end, which merges the partials. The
fact table is clustered on the group key (the usual layout for decision-
support fact tables), so a worker's share holds ~distinct/W groups and
the total volume delivered to the front-end is one group table
(13.5 M x 32 B = 432 MB) regardless of disk memory — which is why the
paper finds group-by memory-insensitive, and why its cluster performance
is limited by the front-end's 100 Mb/s access link while the Active
Disks' 200 MB/s FC link keeps scaling (Figure 1's group-by outlier).
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import GROUPBY_HASH_NS, GROUPBY_MERGE_NS
from .base import TaskContext, register_task

__all__ = ["build_groupby"]


@register_task("groupby")
def build_groupby(context: TaskContext) -> TaskProgram:
    dataset = context.dataset
    distinct = context.param("distinct")
    entry = context.param("group_entry_bytes")
    result_bytes = distinct * entry
    fraction = min(1.0, result_bytes / dataset.total_bytes)
    return TaskProgram(task="groupby", phases=(
        Phase(
            name="scan",
            read_bytes_total=dataset.total_bytes,
            cpu=(CostComponent("hash", GROUPBY_HASH_NS),),
            frontend_fraction=fraction,
            frontend_cpu_ns_per_byte=GROUPBY_MERGE_NS,
        ),
    ))
