"""Project-join: GRACE-style partitioned hash join.

The 32 GB dataset holds both relations; neither fits any configuration's
memory, so the join runs in two phases:

* **partition**: scan both relations, project each 64-byte tuple to its
  32-byte join-relevant image, hash-partition the projected tuples by
  join key across workers, and write the arriving partition files at
  their owners. Half the scanned volume (16 GB) is repartitioned — the
  trait that puts join in the direct disk-to-disk group (Figure 5).
* **probe**: every worker reads its partition files (one interleaved
  stream per memory-sized sub-partition), builds/probes the hash tables,
  and writes the join output (25 % of the input volume).

On the SMP the drives split into read and write groups for both phases
(the NOW-sort arrangement the paper applies to sort and join).
"""

from __future__ import annotations

from math import ceil

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import JOIN_BUILD_PROBE_NS, JOIN_PROJECT_NS
from .base import TaskContext, register_task

__all__ = ["build_join", "subpartition_count"]

#: Fraction of worker memory usable for one hash-table sub-partition.
HASH_TABLE_FRACTION = 0.78


def subpartition_count(context: TaskContext, partition_bytes: int) -> int:
    """Memory-sized sub-partitions each worker splits its share into."""
    budget = max(1, int(context.worker_memory * HASH_TABLE_FRACTION))
    return max(1, ceil(partition_bytes / budget))


@register_task("join")
def build_join(context: TaskContext) -> TaskProgram:
    dataset = context.dataset
    projected = context.param("projected_bytes") / dataset.tuple_bytes
    output_fraction = context.param("output_fraction")
    shuffled_total = int(dataset.total_bytes * projected)
    per_worker_partition = ceil(shuffled_total / context.workers)
    subpartitions = subpartition_count(context, per_worker_partition)
    # Output bytes per probed byte.
    probe_write = output_fraction * dataset.total_bytes / shuffled_total
    smp = context.arch == "smp"
    return TaskProgram(task="join", phases=(
        Phase(
            name="partition",
            read_bytes_total=dataset.total_bytes,
            cpu=(CostComponent("project", JOIN_PROJECT_NS),),
            shuffle_fraction=projected,
            recv_write_fraction=1.0,
            split_disk_groups=smp,
        ),
        Phase(
            name="probe",
            read_bytes_total=shuffled_total,
            cpu=(CostComponent("build_probe", JOIN_BUILD_PROBE_NS),),
            write_fraction=probe_write,
            read_streams=subpartitions,
            split_disk_groups=smp,
        ),
    ))
