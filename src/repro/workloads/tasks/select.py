"""SQL select: scan, apply a 1 %-selective predicate, deliver matches.

The canonical data-reduction task: 268 million 64-byte tuples are
filtered down to 1 %, so on Active Disks only the matches ever cross the
interconnect while the SMP hauls the entire relation over its FC loop.
All three architectures run the same single scan phase; the routing of
the output differs only in what "front-end" means on each machine.
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import SELECT_FILTER_NS
from .base import TaskContext, register_task

__all__ = ["build_select"]


@register_task("select")
def build_select(context: TaskContext) -> TaskProgram:
    dataset = context.dataset
    selectivity = context.param("selectivity")
    return TaskProgram(task="select", phases=(
        Phase(
            name="scan",
            read_bytes_total=dataset.total_bytes,
            cpu=(CostComponent("filter", SELECT_FILTER_NS),),
            frontend_fraction=selectivity,
        ),
    ))
