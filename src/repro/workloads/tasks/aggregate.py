"""SQL aggregate: a zero-dimensional SUM over the whole relation.

The most extreme data reduction in the suite: every worker reduces its
share to a single accumulator and ships a few dozen bytes at the end.
The paper notes its performance is "naturally insensitive to the amount
of memory available" — there is nothing to hold but one running sum.
"""

from __future__ import annotations

from ...arch.program import CostComponent, Phase, TaskProgram
from ...tracegen.costs import AGGREGATE_SUM_NS
from .base import TaskContext, register_task

__all__ = ["build_aggregate"]


@register_task("aggregate")
def build_aggregate(context: TaskContext) -> TaskProgram:
    dataset = context.dataset
    result_bytes = int(context.param("result_bytes"))
    return TaskProgram(task="aggregate", phases=(
        Phase(
            name="scan",
            read_bytes_total=dataset.total_bytes,
            cpu=(CostComponent("sum", AGGREGATE_SUM_NS),),
            frontend_fixed_per_worker=result_bytes,
        ),
    ))
