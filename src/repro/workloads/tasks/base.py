"""Shared infrastructure for the eight task builders.

A *task builder* maps (architecture configuration, simulation scale) to a
:class:`~repro.arch.program.TaskProgram`: the same logical task expressed
against the architecture's programming model, exactly as the paper
implemented each task three times (Section 3).

Scaling rule
------------
``scale`` shrinks every data volume by the same factor **including the
memory used for algorithm decisions** (run lengths, hash-table fit
tests). Because every decision in these algorithms depends on
data-to-memory *ratios*, this preserves run counts, pass counts and spill
thresholds exactly while letting the simulation finish quickly. At
``scale=1.0`` the byte volumes are the paper's own.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Callable, Dict

from ...arch.config import ActiveDiskConfig, ArchConfig, ClusterConfig, SMPConfig
from ...arch.program import TaskProgram
from ..datasets import DatasetSpec, dataset_for

__all__ = [
    "TaskContext", "TaskBuilder", "register_task", "task_builder",
    "registered_tasks", "build_program",
]


@dataclass(frozen=True)
class TaskContext:
    """Everything a task builder needs to emit a program."""

    config: ArchConfig
    dataset: DatasetSpec
    scale: float

    @property
    def arch(self) -> str:
        return self.config.arch

    @property
    def workers(self) -> int:
        if isinstance(self.config, SMPConfig):
            return self.config.num_cpus
        return self.config.num_disks

    @property
    def worker_memory(self) -> int:
        """Memory available to one worker's algorithm, scaled."""
        config = self.config
        if isinstance(config, ActiveDiskConfig):
            memory = config.disk_memory_bytes
        elif isinstance(config, ClusterConfig):
            memory = config.node_usable_memory
        elif isinstance(config, SMPConfig):
            memory = config.memory_per_board // config.cpus_per_board
        else:
            raise TypeError(f"unknown config type {type(config).__name__}")
        return int(memory * self.scale)

    @property
    def aggregate_memory(self) -> int:
        """Total worker memory across the machine, scaled."""
        return self.worker_memory * self.workers

    @property
    def per_worker_bytes(self) -> int:
        return ceil(self.dataset.total_bytes / self.workers)

    def param(self, key: str) -> float:
        return self.dataset.params[key]


TaskBuilder = Callable[[TaskContext], TaskProgram]

_REGISTRY: Dict[str, TaskBuilder] = {}


def register_task(name: str):
    """Decorator registering a builder under its task name."""

    def wrap(builder: TaskBuilder) -> TaskBuilder:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} registered twice")
        _REGISTRY[name] = builder
        return builder

    return wrap


def task_builder(name: str) -> TaskBuilder:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown task {name!r}; known: {', '.join(sorted(_REGISTRY))}")
    return _REGISTRY[name]


def registered_tasks() -> tuple:
    return tuple(sorted(_REGISTRY))


def build_program(task: str, config: ArchConfig,
                  scale: float = 1.0) -> TaskProgram:
    """Build ``task``'s program for ``config`` at simulation ``scale``."""
    context = TaskContext(
        config=config,
        dataset=dataset_for(task, scale),
        scale=scale,
    )
    return task_builder(task)(context)
