"""The eight decision-support task builders (paper Section 3)."""

from . import (  # noqa: F401  (imports register the builders)
    aggregate,
    dcube,
    dmine,
    groupby,
    join,
    mview,
    select,
    sort,
)
from .base import (
    TaskBuilder,
    TaskContext,
    build_program,
    register_task,
    registered_tasks,
    task_builder,
)

__all__ = [
    "TaskContext", "TaskBuilder",
    "build_program", "task_builder", "register_task", "registered_tasks",
]
