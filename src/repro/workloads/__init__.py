"""Workloads: Table 2 datasets, task programs, reference algorithms."""

from .datasets import TABLE2, TASKS, DatasetSpec, dataset_for
from .pipehash import (
    GroupBy,
    PassPlan,
    PipeHashPlan,
    child_table_sizes,
    plan_pipehash,
)
from .tasks import (
    TaskContext,
    build_program,
    registered_tasks,
    task_builder,
)

__all__ = [
    "DatasetSpec", "TABLE2", "TASKS", "dataset_for",
    "build_program", "task_builder", "registered_tasks", "TaskContext",
    "plan_pipehash", "PipeHashPlan", "PassPlan", "GroupBy",
    "child_table_sizes",
]
