"""PipeHash planner for the datacube task (Agarwal et al., VLDB'96).

The datacube over 4 dimensions computes 15 group-bys (every non-empty
attribute subset). PipeHash minimizes input scans by computing several
group-bys in one pass, as a pipeline of hash tables that must fit in
memory together. The paper's operating points (Section 4.3):

* the largest (4-attribute root) group-by's table is 695 MB;
* the remaining 14 group-bys need 2.3 GB in total and "can be merged
  into a single scan" when that much disk memory is available;
* the root is computed from the raw input in its own scan; child
  group-bys are computed from the root's output;
* when the root's table does not fit the (aggregate) disk memory — the
  16-disk / 32 MB case — each disk forwards partially-computed hash
  tables to the front-end as its table overflows, repeatedly re-sending
  entries. We model that spill volume as ``SPILL_FACTOR x root size``.

Table sizes: child group-by tables shrink geometrically with each dropped
attribute; the ratio is calibrated so the 14 children total the published
2.3 GB given the published 695 MB root.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Tuple

__all__ = ["GroupBy", "PipeHashPlan", "PassPlan", "plan_pipehash",
           "child_table_sizes", "SHRINK_RATIO", "SPILL_FACTOR"]

#: Geometric shrink per dropped attribute; solves
#: root * (4/r + 6/r^2 + 4/r^3) = 2.3 GB with root = 695 MB.
SHRINK_RATIO = 2.25

#: Spill amplification when the root table thrashes: once a disk's
#: partial table can no longer aggregate in place, essentially every
#: insertion is flushed to the front-end, so the spill volume approaches
#: the full tuple volume rather than one table's worth — about 24x the
#: stable table size for this dataset (536 M tuples vs 21.7 M entries).
#: Calibrated against the 16-disk configuration's ~35 % gain from
#: doubling disk memory (Figure 4).
SPILL_FACTOR = 24.0


@dataclass(frozen=True)
class GroupBy:
    """One group-by of the cube: an attribute subset and its table size."""

    attributes: Tuple[int, ...]
    table_bytes: int

    @property
    def arity(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class PassPlan:
    """One scan: which group-bys it computes and what it reads/writes."""

    group_bys: Tuple[GroupBy, ...]
    read_bytes: int          # raw input for the root pass, root output after
    write_bytes: int         # group-by tables written out
    spill_bytes: int = 0     # partial tables forwarded to the front-end
    scans_raw_input: bool = False


@dataclass(frozen=True)
class PipeHashPlan:
    """The full schedule: an ordered list of passes."""

    passes: Tuple[PassPlan, ...]

    @property
    def num_passes(self) -> int:
        return len(self.passes)

    @property
    def total_spill_bytes(self) -> int:
        return sum(p.spill_bytes for p in self.passes)


def child_table_sizes(root_bytes: int, dims: int = 4,
                      ratio: float = SHRINK_RATIO) -> List[GroupBy]:
    """All non-root group-bys with geometrically shrinking tables."""
    children: List[GroupBy] = []
    for arity in range(dims - 1, 0, -1):
        size = int(root_bytes / ratio ** (dims - arity))
        for attrs in combinations(range(dims), arity):
            children.append(GroupBy(attributes=attrs, table_bytes=size))
    return children


def plan_pipehash(input_bytes: int, root_table_bytes: int,
                  aggregate_memory: int, dims: int = 4,
                  ratio: float = SHRINK_RATIO,
                  spill_factor: float = SPILL_FACTOR) -> PipeHashPlan:
    """Schedule the cube's 15 group-bys into memory-feasible passes.

    Pass 1 always scans the raw input and computes the root group-by;
    when the root table exceeds ``aggregate_memory`` the pass spills
    ``spill_factor * root_table_bytes`` of partial tables to the
    front-end. Subsequent passes scan the root's output and compute
    bin-packed subsets of the children (first-fit decreasing).
    """
    if aggregate_memory <= 0:
        raise ValueError(f"non-positive memory: {aggregate_memory}")
    root = GroupBy(attributes=tuple(range(dims)),
                   table_bytes=root_table_bytes)
    spill = 0
    if root_table_bytes > aggregate_memory:
        spill = int(spill_factor * root_table_bytes)
    passes: List[PassPlan] = [PassPlan(
        group_bys=(root,),
        read_bytes=input_bytes,
        write_bytes=root_table_bytes,
        spill_bytes=spill,
        scans_raw_input=True,
    )]

    children = sorted(child_table_sizes(root_table_bytes, dims, ratio),
                      key=lambda g: g.table_bytes, reverse=True)
    bins: List[List[GroupBy]] = []
    bin_free: List[int] = []
    for child in children:
        placed = False
        for i, free in enumerate(bin_free):
            if child.table_bytes <= free:
                bins[i].append(child)
                bin_free[i] -= child.table_bytes
                placed = True
                break
        if not placed:
            bins.append([child])
            bin_free.append(aggregate_memory - child.table_bytes)

    for group in bins:
        passes.append(PassPlan(
            group_bys=tuple(group),
            read_bytes=root_table_bytes,
            write_bytes=sum(g.table_bytes for g in group),
            scans_raw_input=False,
        ))
    return PipeHashPlan(passes=tuple(passes))
