"""Exceptions raised by injected faults and their recovery machinery.

Transient faults (bus glitches, packet loss, media errors the drive can
re-read around) are *recovered inside the owning component* and never
surface as exceptions — they cost simulated time and bump ``faults.*``
counters. Only permanent faults escape: :class:`DriveFailed` propagates
to the architecture models, which degrade gracefully (survivors re-scan
the lost partition, or the disklet is re-dispatched), and
:class:`RequestAborted` / :class:`QueueTimeout` report a retry policy
that ran out of attempts.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "MediaError",
    "DriveFailed",
    "TransientBusError",
    "LinkDown",
    "DiskletCrash",
    "QueueTimeout",
    "RequestAborted",
]


class FaultError(Exception):
    """Base class for every injected-fault exception."""


class MediaError(FaultError):
    """A sector could not be read even after the drive's read retries."""

    def __init__(self, drive: str, lbn: int):
        super().__init__(f"{drive}: unrecoverable media error at LBN {lbn}")
        self.drive = drive
        self.lbn = lbn


class DriveFailed(FaultError):
    """The whole spindle is gone; every request to it fails."""

    def __init__(self, drive: str):
        super().__init__(f"drive {drive} failed")
        self.drive = drive


class TransientBusError(FaultError):
    """A transfer hit a transient interconnect error (FCP retry fixes it)."""


class LinkDown(FaultError):
    """A network link is down for longer than the sender tolerates."""


class DiskletCrash(FaultError):
    """A disklet crashed; DiskOS re-dispatches it."""


class QueueTimeout(FaultError):
    """A bounded-queue acquisition exhausted its retry policy."""

    def __init__(self, queue: str):
        super().__init__(f"{queue}: slot acquisition timed out")
        self.queue = queue


class RequestAborted(FaultError):
    """An async I/O request exhausted its timeout/retry policy."""
