"""The fault injector: arms a plan on a simulator and drives its ports.

Mirrors the telemetry wiring exactly: ``Simulator.__init__`` sets
``sim.faults`` to the module-level :data:`NULL_FAULTS` singleton
(``enabled`` is False), and a real :class:`FaultInjector` replaces it
via :meth:`FaultInjector.install`. Component models register a
:class:`FaultPort` only when ``sim.faults.enabled`` and keep ``None``
otherwise, so an unarmed run pays one attribute load and an ``is None``
branch per injection site — no allocation, no RNG draw, and a
bit-identical event timeline.

Determinism: activations are scheduled as ordinary simulator processes
at the spec's ``at`` time, probabilistic draws come from one seeded
``random.Random`` consumed in event order, and the injector keeps a
``timeline`` of (time, action, kind, component) tuples so two runs with
the same (plan, seed) can be compared entry for entry.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

from .plan import WINDOWED_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FaultPort", "NullFaultInjector", "NULL_FAULTS"]

#: Window kinds that stall the component outright (vs. degrade it).
_OUTAGE_KINDS = ("loop_outage", "link_flap", "stream_stall")


class FaultPort:
    """One component's view of the injector.

    Components poll the port on their hot paths (``factor()``,
    ``probability()``, ``media_hit()``, ``down_remaining()``) or
    register a callback for push-style faults (``drive_failure``).
    """

    __slots__ = ("injector", "component_id", "active", "_callbacks")

    def __init__(self, injector: "FaultInjector", component_id: str):
        self.injector = injector
        self.component_id = component_id
        self.active: List[FaultSpec] = []
        self._callbacks: Dict[str, Callable[[FaultSpec], None]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPort({self.component_id!r}, active={len(self.active)})"

    @property
    def rng(self) -> random.Random:
        return self.injector.rng

    def on(self, kind: str, callback: Callable[[FaultSpec], None]) -> None:
        """Register a push callback fired when ``kind`` activates."""
        self._callbacks[kind] = callback

    def note(self, key: str, amount: float = 1) -> None:
        self.injector.note(key, amount)

    # -- injector side ----------------------------------------------------
    def _activate(self, spec: FaultSpec) -> None:
        self.active.append(spec)
        callback = self._callbacks.get(spec.kind)
        if callback is not None:
            callback(spec)

    def _deactivate(self, spec: FaultSpec) -> None:
        try:
            self.active.remove(spec)
        except ValueError:
            pass  # already consumed by the component

    # -- component queries ------------------------------------------------
    def take(self, kind: str) -> Optional[FaultSpec]:
        """Consume and return the first armed fault of ``kind``, if any."""
        for spec in self.active:
            if spec.kind == kind:
                self.active.remove(spec)
                return spec
        return None

    def consume(self, spec: FaultSpec) -> None:
        """Mark a one-shot spec as spent (media error repaired, ...)."""
        self._deactivate(spec)

    def factor(self) -> float:
        """Combined service-time multiplier from active slowdowns."""
        factor = 1.0
        for spec in self.active:
            if spec.kind == "drive_slowdown":
                factor *= spec.magnitude
        return factor

    def probability(self, kind: str) -> float:
        """Combined per-operation error probability for ``kind``."""
        survive = 1.0
        for spec in self.active:
            if spec.kind == kind:
                survive *= 1.0 - spec.magnitude
        return 1.0 - survive

    def down_remaining(self, now: float,
                       kinds: Tuple[str, ...] = _OUTAGE_KINDS) -> float:
        """Seconds until every active outage window has cleared."""
        remaining = 0.0
        for spec in self.active:
            if spec.kind in kinds:
                remaining = max(remaining, spec.end - now)
        return remaining

    def wait_out(self, sim, kinds: Tuple[str, ...] = _OUTAGE_KINDS,
                 counter: Optional[str] = None):
        """Generator: block until active outage windows of ``kinds`` end."""
        stalled = 0.0
        while True:
            remaining = self.down_remaining(sim.now, kinds)
            if remaining <= 0:
                break
            stalled += remaining
            yield sim.timeout(remaining)
        if stalled > 0 and counter:
            self.note(counter)
            self.note(counter + "_seconds", stalled)

    def media_hit(self, lbn: int, sectors: int) -> Optional[FaultSpec]:
        """First armed media fault whose LBN falls inside the request."""
        for spec in self.active:
            if (spec.kind in ("media_error", "latent_sector_error")
                    and lbn <= spec.lbn < lbn + sectors):
                return spec
        return None


class FaultInjector:
    """Owns a plan, a seeded RNG, the ports, counters and the timeline."""

    enabled = True

    def __init__(self, plan: Optional[FaultPlan] = None,
                 seed: Optional[int] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = self.plan.seed if seed is None else seed
        self.rng = random.Random(self.seed)
        self.ports: List[FaultPort] = []
        self.counters: Dict[str, float] = {}
        self.timeline: List[Tuple[float, str, str, str]] = []
        self._sim: Any = None
        self._armed = False

    # -- wiring -----------------------------------------------------------
    def install(self, sim) -> "FaultInjector":
        """Attach to ``sim``: become ``sim.faults`` and hook its run."""
        if self._sim is not None and self._sim is not sim:
            raise RuntimeError("FaultInjector is already installed on a "
                               "different simulator")
        self._sim = sim
        sim.faults = self
        sim.add_hook(self)
        return self

    def register(self, component_id: str) -> FaultPort:
        """Create the port through which ``component_id`` sees faults."""
        if self._armed:
            raise RuntimeError(
                f"cannot register {component_id!r}: the plan is already "
                f"armed — build components before running the simulator")
        port = FaultPort(self, component_id)
        self.ports.append(port)
        return port

    # -- simulator lifecycle hook protocol --------------------------------
    def run_started(self, sim) -> None:
        if self._armed:
            return
        self._armed = True
        for spec in self.plan:
            targets = [port for port in self.ports
                       if fnmatchcase(port.component_id, spec.target)]
            if targets:
                sim.process(self._deliver(sim, spec, targets),
                            name=f"fault:{spec.kind}@{spec.target}")
            else:
                self.note(f"faults.unmatched.{spec.kind}")

    def run_finished(self, sim) -> None:
        pass

    def _deliver(self, sim, spec: FaultSpec, targets: List[FaultPort]):
        if spec.at > 0:
            yield sim.timeout(spec.at)
        for port in targets:
            self.record("inject", spec.kind, port.component_id)
            port._activate(spec)
        self.note(f"faults.injected.{spec.kind}")
        if spec.kind in WINDOWED_KINDS and spec.duration > 0:
            yield sim.timeout(spec.duration)
            for port in targets:
                self.record("clear", spec.kind, port.component_id)
                port._deactivate(spec)

    # -- accounting -------------------------------------------------------
    def note(self, key: str, amount: float = 1) -> None:
        """Bump a fault counter (mirrored into telemetry when recording)."""
        self.counters[key] = self.counters.get(key, 0) + amount
        sim = self._sim
        if sim is not None and sim.telemetry.enabled:
            sim.telemetry.registry.counter(key).add(amount)

    def record(self, action: str, kind: str, component_id: str) -> None:
        """Append to the deterministic event timeline (+ trace instant)."""
        sim = self._sim
        now = sim.now if sim is not None else 0.0
        self.timeline.append((now, action, kind, component_id))
        if sim is not None and sim.telemetry.enabled:
            sim.telemetry.spans.instant(
                "fault", f"{action}:{kind}", component_id, ts=now)


class NullFaultInjector:
    """The do-nothing injector every simulator starts with.

    ``register`` raises: components must check ``sim.faults.enabled``
    and keep their port reference ``None`` when no plan is armed — that
    guard is the zero-cost contract.
    """

    enabled = False
    plan = FaultPlan()
    seed = 0
    ports: tuple = ()
    counters: Dict[str, float] = {}
    timeline: tuple = ()

    def install(self, sim) -> "NullFaultInjector":
        sim.faults = self
        return self

    def register(self, component_id: str) -> FaultPort:
        raise RuntimeError(
            "no fault plan armed; guard registration with "
            "`if sim.faults.enabled:`")

    def note(self, key: str, amount: float = 1) -> None:
        pass

    def record(self, action: str, kind: str, component_id: str) -> None:
        pass

    def run_started(self, sim) -> None:
        pass

    def run_finished(self, sim) -> None:
        pass


NULL_FAULTS = NullFaultInjector()
