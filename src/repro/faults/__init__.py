"""Deterministic fault injection and recovery policies for Howsim.

Build a :class:`FaultPlan` (or load one from JSON), install a
:class:`FaultInjector` on a simulator before constructing the machine,
and run as usual::

    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    plan = FaultPlan.of(
        FaultSpec(kind="drive_failure", target="disk.3", at=1.5),
        seed=7)
    sim = Simulator()
    injector = FaultInjector(plan).install(sim)
    machine = build_machine(sim, config)
    result = machine.run(program)       # completes, degraded
    print(injector.counters)            # faults.* recovery accounting

With no plan armed every injection site is zero-cost and runs are
bit-identical to a fault-free simulator; with a plan, identical
(plan, seed) pairs reproduce identical event timelines. See
``docs/FAULTS.md`` for the taxonomy and plan-file schema.
"""

from .errors import (
    DiskletCrash,
    DriveFailed,
    FaultError,
    LinkDown,
    MediaError,
    QueueTimeout,
    RequestAborted,
    TransientBusError,
)
from .injector import NULL_FAULTS, FaultInjector, FaultPort, NullFaultInjector
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .policies import RetryPolicy, TimeoutPolicy

__all__ = [
    "FaultPlan", "FaultSpec", "FAULT_KINDS",
    "FaultInjector", "FaultPort", "NullFaultInjector", "NULL_FAULTS",
    "RetryPolicy", "TimeoutPolicy",
    "FaultError", "MediaError", "DriveFailed", "TransientBusError",
    "LinkDown", "DiskletCrash", "QueueTimeout", "RequestAborted",
]
