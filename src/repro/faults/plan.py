"""Fault plans: declarative, serialisable schedules of fault specs.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries plus a
seed for the injector's RNG. Plans are plain data — they can be built
in code, loaded from a JSON file (``repro run --fault-plan plan.json``)
and round-tripped losslessly, and the same (plan, seed) pair always
reproduces the same event timeline.

Plan-file schema::

    {
      "seed": 42,
      "faults": [
        {"kind": "drive_failure", "target": "disk.3", "at": 1.5},
        {"kind": "packet_loss", "target": "net", "at": 0.0,
         "duration": 2.0, "magnitude": 0.05}
      ]
    }

``target`` is an fnmatch pattern over component ids. Components
register as ``disk.<i>``, ``bus.<name>`` (e.g. ``bus.fc_al.a``,
``bus.fsw.loop0``), ``net`` / ``net.host<i>``, and ``diskos.<i>``;
``disk.*`` hits every drive.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from math import inf
from typing import Any, Dict, Iterable, Tuple

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

#: Faults active during a time window [at, at + duration).
WINDOWED_KINDS = frozenset({
    "drive_slowdown",
    "bus_transient",
    "loop_outage",
    "packet_loss",
    "link_flap",
    "stream_stall",
})

#: Faults armed at `at` and consumed by the first matching operation.
ONESHOT_KINDS = frozenset({
    "media_error",
    "latent_sector_error",
    "disklet_crash",
})

#: Faults that never clear once injected.
PERMANENT_KINDS = frozenset({"drive_failure"})

FAULT_KINDS = WINDOWED_KINDS | ONESHOT_KINDS | PERMANENT_KINDS

#: Kinds whose magnitude is a probability in (0, 1].
_PROBABILITY_KINDS = frozenset({"bus_transient", "packet_loss"})

#: Kinds that only make sense with a finite window (a permanent outage
#: would hang every sender, which defeats "degraded, not dead").
_FINITE_WINDOW_KINDS = frozenset({"loop_outage", "link_flap", "stream_stall"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    magnitude means: slowdown factor (``drive_slowdown``, > 1), error
    probability (``bus_transient`` / ``packet_loss``), or read-retry
    count (``media_error`` / ``latent_sector_error``; 0 = drive
    default). ``lbn`` targets a sector for media faults.
    """

    kind: str
    target: str
    at: float = 0.0
    duration: float = 0.0
    magnitude: float = 0.0
    lbn: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(sorted(FAULT_KINDS))}")
        if not self.target:
            raise ValueError("fault target pattern must be non-empty")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind in _FINITE_WINDOW_KINDS and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a duration > 0")
        if self.kind in _PROBABILITY_KINDS and not 0 < self.magnitude <= 1:
            raise ValueError(
                f"{self.kind} magnitude is a probability in (0, 1], "
                f"got {self.magnitude}")
        if self.kind == "drive_slowdown" and self.magnitude <= 1:
            raise ValueError(
                f"drive_slowdown magnitude is a factor > 1, "
                f"got {self.magnitude}")
        if self.kind in ("media_error", "latent_sector_error"):
            if self.magnitude < 0 or self.magnitude != int(self.magnitude):
                raise ValueError(
                    f"{self.kind} magnitude is a whole retry count, "
                    f"got {self.magnitude}")
        if self.lbn < 0:
            raise ValueError(f"lbn must be >= 0, got {self.lbn}")

    @property
    def end(self) -> float:
        """When the fault clears (inf for permanent/one-shot kinds)."""
        if self.kind in WINDOWED_KINDS:
            return self.at + self.duration
        return inf

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        return {k: v for k, v in data.items()
                if v or k in ("kind", "target")}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        unknown = set(data) - {"kind", "target", "at", "duration",
                               "magnitude", "lbn"}
        if unknown:
            raise ValueError(
                f"unknown fault spec fields: {', '.join(sorted(unknown))}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults plus the injector seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def of(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=specs, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ValueError(
                f"unknown fault plan fields: {', '.join(sorted(unknown))}")
        faults = data.get("faults", ())
        if not isinstance(faults, Iterable) or isinstance(faults, (str, bytes)):
            raise ValueError("'faults' must be a list of fault specs")
        return cls(specs=tuple(FaultSpec.from_dict(item) for item in faults),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_file(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
