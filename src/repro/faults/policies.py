"""Retry and timeout policies used by recovery code paths.

Both are small frozen dataclasses so they can be shared between
components and embedded in configs without aliasing surprises. All
delays are in simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "TimeoutPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``delay(0)`` is the pause before the first retry; attempt ``k``
    waits ``base_delay * factor**k`` capped at ``max_delay``.
    """

    max_attempts: int = 4
    base_delay: float = 1e-3
    factor: float = 2.0
    max_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.base_delay * self.factor ** attempt, self.max_delay)


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-attempt timeout that stretches on every retry.

    Attempt ``k`` is given ``timeout * factor**k`` seconds, capped at
    ``max_timeout``, before the issuer declares the request lost.
    """

    timeout: float = 0.5
    factor: float = 2.0
    max_timeout: float = 8.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_timeout < self.timeout:
            raise ValueError("max_timeout must be >= timeout")

    def timeout_for(self, attempt: int) -> float:
        """Deadline for attempt number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.timeout * self.factor ** attempt, self.max_timeout)
