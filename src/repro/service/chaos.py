"""Seeded chaos injection for the sweep service transport layer.

This is the service-layer sibling of :mod:`repro.faults`: where a
:class:`~repro.faults.plan.FaultPlan` schedules *simulated hardware*
faults inside one process, a :class:`ChaosPlan` schedules *distributed
systems* faults — message drops, delays (reordering), duplication,
byte-level corruption, abrupt disconnects, one-way partitions — on the
real channels between a live coordinator and its workers. The same
design rules apply:

* **Declarative and serialisable.** A plan is a tuple of
  :class:`ChaosSpec` entries plus a seed; it round-trips through JSON
  losslessly (``repro chaos --plan plan.json``).
* **Deterministic.** Each wrapped channel derives its RNG from
  ``(plan.seed, channel role)``, and every injection decision is a
  draw against the message sequence on that channel — the same plan,
  seed and message sequence always produce the same chaos schedule.
* **Zero-cost when disarmed.** Chaos lives entirely in a wrapper
  (:class:`ChaosTransport` around any
  :class:`~repro.service.transport.Transport`); a run without a plan
  never even constructs the wrapper, so the production hot path is
  untouched, not merely gated.

Plan-file schema::

    {
      "seed": 42,
      "chaos": [
        {"kind": "drop", "target": "accept*", "direction": "recv",
         "probability": 0.05},
        {"kind": "delay", "target": "accept#1", "probability": 0.1,
         "magnitude": 3},
        {"kind": "partition", "target": "accept#2", "direction": "recv",
         "probability": 0.02, "magnitude": 8, "limit": 1}
      ]
    }

``target`` is an fnmatch pattern over channel **roles**: the Nth
channel a listener accepts is ``accept#N``, the Nth outbound dial is
``connect#N``. ``direction`` is from the wrapped channel's point of
view — on a coordinator-side accepted channel, ``send`` chaos hits
coordinator->worker traffic (assignments, welcomes) and ``recv`` chaos
hits worker->coordinator traffic (hellos, heartbeats, results).

Kinds and their ``magnitude``:

``drop``
    The message silently vanishes.
``duplicate``
    The message is delivered twice.
``delay``
    The message is held until ``magnitude`` later messages have passed
    it (reordering; a held message still in flight when the channel
    closes is flushed late — the classic late-result-from-a-dead-worker
    scenario).
``corrupt``
    ``magnitude`` characters of the serialized frame are mangled
    (default 3) and the garbage goes on the wire verbatim; the receiver
    sees :class:`~repro.service.transport.MalformedFrame`.
``disconnect``
    The channel is abruptly closed mid-conversation (a chaos "kill");
    a hardened worker reconnects under a fresh epoch.
``partition``
    A one-way partition: this and the next ``magnitude`` messages in
    the rule's direction are dropped, the other direction flows.

See ``docs/CHAOS.md`` for the hardening guarantees the gauntlet
(:mod:`repro.service.gauntlet`, ``repro chaos``) asserts under these
plans.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .transport import Channel, ChannelClosed, Listener, MalformedFrame, Transport

__all__ = ["CHAOS_KINDS", "ChaosSpec", "ChaosPlan",
           "ChaosChannel", "ChaosListener", "ChaosTransport"]

#: Injectable chaos kinds, in the order rules are consulted.
CHAOS_KINDS = ("drop", "duplicate", "delay", "corrupt",
               "disconnect", "partition")

_DIRECTIONS = ("send", "recv", "both")

#: Kinds whose magnitude is a whole message count and must be >= 1.
_COUNTED_KINDS = frozenset({"delay", "partition"})

#: Kinds that take no magnitude at all.
_PLAIN_KINDS = frozenset({"drop", "duplicate", "disconnect"})


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos rule, armed per matching channel.

    ``probability`` is the per-message chance the rule fires once
    armed; ``after`` delays arming until that many messages have passed
    in the rule's direction; ``limit`` caps total firings (0 means
    unlimited). ``magnitude`` means: messages to reorder past
    (``delay``), characters to mangle (``corrupt``; 0 picks the
    default 3), or partition window length in messages
    (``partition``).
    """

    kind: str
    target: str = "*"
    direction: str = "send"
    probability: float = 1.0
    after: int = 0
    limit: int = 0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; "
                             f"expected one of {', '.join(CHAOS_KINDS)}")
        if not self.target:
            raise ValueError("chaos target pattern must be non-empty")
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"direction must be one of {_DIRECTIONS}, "
                             f"got {self.direction!r}")
        if not 0 < self.probability <= 1:
            raise ValueError(f"probability must be in (0, 1], "
                             f"got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")
        if self.magnitude < 0 or self.magnitude != int(self.magnitude):
            raise ValueError(f"magnitude is a whole message/character "
                             f"count, got {self.magnitude}")
        if self.kind in _COUNTED_KINDS and self.magnitude < 1:
            raise ValueError(f"{self.kind} needs a magnitude >= 1")
        if self.kind in _PLAIN_KINDS and self.magnitude:
            raise ValueError(f"{self.kind} takes no magnitude, "
                             f"got {self.magnitude}")

    def matches(self, role: str, direction: str) -> bool:
        return (fnmatchcase(role, self.target)
                and self.direction in (direction, "both"))

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        defaults = {"target": "*", "direction": "send", "probability": 1.0,
                    "after": 0, "limit": 0, "magnitude": 0.0}
        return {key: value for key, value in data.items()
                if key == "kind" or value != defaults.get(key)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSpec":
        unknown = set(data) - {"kind", "target", "direction", "probability",
                               "after", "limit", "magnitude"}
        if unknown:
            raise ValueError(
                f"unknown chaos spec fields: {', '.join(sorted(unknown))}")
        return cls(**data)


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable schedule of chaos rules plus the RNG seed."""

    specs: Tuple[ChaosSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, ChaosSpec):
                raise TypeError(
                    f"expected ChaosSpec, got {type(spec).__name__}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def of(cls, *specs: ChaosSpec, seed: int = 0) -> "ChaosPlan":
        return cls(specs=specs, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "chaos": [spec.to_dict() for spec in self.specs]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPlan":
        unknown = set(data) - {"seed", "chaos"}
        if unknown:
            raise ValueError(
                f"unknown chaos plan fields: {', '.join(sorted(unknown))}")
        rules = data.get("chaos", ())
        if not isinstance(rules, Iterable) or isinstance(rules, (str, bytes)):
            raise ValueError("'chaos' must be a list of chaos specs")
        return cls(specs=tuple(ChaosSpec.from_dict(item) for item in rules),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "ChaosPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_file(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


class ChaosChannel(Channel):
    """A channel that applies one seeded chaos schedule to its traffic.

    At most one rule fires per message (the first armed rule, in plan
    order, whose probability draw succeeds), so a plan's effects
    compose predictably. Delayed messages are re-delivered verbatim —
    chaos is never re-applied to them.

    Caveat for blocking callers: a dropped inbound frame makes
    :meth:`recv` return ``None`` even with ``timeout=None`` (the frame
    was consumed, nothing is left to return). Every service loop polls
    with a finite timeout, so in practice this just looks like a quiet
    wire.
    """

    def __init__(self, inner: Channel, plan: ChaosPlan, role: str,
                 transport: Optional["ChaosTransport"] = None):
        self.inner = inner
        self.peer = f"chaos:{role}({inner.peer})"
        self.role = role
        self._transport = transport
        self._rng = random.Random(f"{plan.seed}:{role}")
        self._send_rules = [spec for spec in plan.specs
                            if spec.matches(role, "send")]
        self._recv_rules = [spec for spec in plan.specs
                            if spec.matches(role, "recv")]
        self._fired: Dict[int, int] = {}
        self._sent = 0
        self._received = 0
        self._held_send: List[Tuple[int, Dict]] = []
        self._held_recv: List[Tuple[int, Dict]] = []
        self._queued_recv: deque = deque()
        self._mute_send_until = 0
        self._mute_recv_until = 0

    # ------------------------------------------------------------ decisions
    def _note(self, kind: str) -> None:
        if self._transport is not None:
            self._transport._note(kind)

    def _fire(self, rules: List[ChaosSpec], seq: int) -> Optional[ChaosSpec]:
        for rule in rules:
            if seq <= rule.after:
                continue
            key = id(rule)
            fired = self._fired.get(key, 0)
            if rule.limit and fired >= rule.limit:
                continue
            if rule.probability < 1 and self._rng.random() >= rule.probability:
                continue
            self._fired[key] = fired + 1
            return rule
        return None

    # ----------------------------------------------------------------- send
    def send(self, message: Dict) -> None:
        self._sent += 1
        seq = self._sent
        self._release_held_send(seq)
        if seq <= self._mute_send_until:
            self._note("partitioned")
            return
        rule = self._fire(self._send_rules, seq)
        if rule is None:
            self.inner.send(message)
            return
        self._note(rule.kind)
        if rule.kind == "drop":
            return
        if rule.kind == "duplicate":
            self.inner.send(message)
            self.inner.send(message)
            return
        if rule.kind == "delay":
            self._held_send.append((seq + int(rule.magnitude), message))
            return
        if rule.kind == "corrupt":
            self.inner.send_text(self._mangle(message, rule))
            return
        if rule.kind == "disconnect":
            self.inner.close()
            raise ChannelClosed(f"{self.peer}: chaos disconnect")
        # partition: this message opens the window and is its first loss
        self._mute_send_until = seq + int(rule.magnitude)
        self._note("partitioned")

    def send_text(self, text: str) -> None:
        self.inner.send_text(text)

    def _release_held_send(self, seq: int) -> None:
        if not self._held_send:
            return
        due = [message for release_at, message in self._held_send
               if release_at <= seq]
        self._held_send = [(release_at, message)
                           for release_at, message in self._held_send
                           if release_at > seq]
        for message in due:
            self.inner.send(message)

    def _mangle(self, message: Dict, rule: ChaosSpec) -> str:
        text = json.dumps(message, sort_keys=True)
        flips = int(rule.magnitude) or 3
        chars = list(text)
        for _ in range(flips):
            position = self._rng.randrange(len(chars))
            chars[position] = chr(33 + self._rng.randrange(90))
        return "".join(chars)

    # ----------------------------------------------------------------- recv
    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        if self._queued_recv:
            return self._queued_recv.popleft()
        message = self.inner.recv(timeout)
        if message is None:
            return None
        self._received += 1
        seq = self._received
        self._release_held_recv(seq)
        if seq <= self._mute_recv_until:
            self._note("partitioned")
            return self._pop_queued()
        rule = self._fire(self._recv_rules, seq)
        if rule is None:
            return message
        self._note(rule.kind)
        if rule.kind == "drop":
            return self._pop_queued()
        if rule.kind == "duplicate":
            self._queued_recv.append(json.loads(json.dumps(message)))
            return message
        if rule.kind == "delay":
            self._held_recv.append((seq + int(rule.magnitude), message))
            return self._pop_queued()
        if rule.kind == "corrupt":
            raise MalformedFrame(self.peer, self._mangle(message, rule))
        if rule.kind == "disconnect":
            self.inner.close()
            raise ChannelClosed(f"{self.peer}: chaos disconnect")
        # partition
        self._mute_recv_until = seq + int(rule.magnitude)
        self._note("partitioned")
        return self._pop_queued()

    def _release_held_recv(self, seq: int) -> None:
        if not self._held_recv:
            return
        due = [message for release_at, message in self._held_recv
               if release_at <= seq]
        self._held_recv = [(release_at, message)
                           for release_at, message in self._held_recv
                           if release_at > seq]
        self._queued_recv.extend(due)

    def _pop_queued(self) -> Optional[Dict]:
        return self._queued_recv.popleft() if self._queued_recv else None

    # ----------------------------------------------------------------- misc
    def poll(self) -> bool:
        return bool(self._queued_recv) or self.inner.poll()

    def close(self) -> None:
        # Delayed sends still in flight are flushed late — exactly the
        # "late result from a presumed-dead worker" scenario the
        # coordinator's epoch fencing exists to absorb.
        held, self._held_send = self._held_send, []
        try:
            for _, message in held:
                self.inner.send(message)
        except (ChannelClosed, OSError):
            pass
        self.inner.close()


class ChaosListener(Listener):
    """Wraps a listener so every accepted channel gets the plan."""

    def __init__(self, inner: Listener, transport: "ChaosTransport"):
        self.inner = inner
        self.address = inner.address
        self._transport = transport

    def accept(self, timeout: Optional[float] = None) -> Optional[Channel]:
        channel = self.inner.accept(timeout)
        if channel is None:
            return None
        return self._transport._wrap(channel, "accept")

    def close(self) -> None:
        self.inner.close()


class ChaosTransport(Transport):
    """A transport wrapper that arms a :class:`ChaosPlan` on every channel.

    ``stats`` accumulates the number of times each chaos kind actually
    fired (plus ``partitioned`` for every message muted inside a
    partition window); with ``telemetry`` the same counts mirror into
    ``service.chaos.*`` counters.
    """

    scheme = "chaos"

    def __init__(self, inner: Transport, plan: ChaosPlan, telemetry=None):
        self.inner = inner
        self.plan = plan
        self.telemetry = telemetry
        self.stats: Dict[str, int] = {}
        self._accepted = 0
        self._connected = 0
        if telemetry is not None:
            registry = telemetry.registry
            for kind in CHAOS_KINDS + ("partitioned",):
                registry.counter(f"service.chaos.{kind}")

    def listen(self, address: str) -> Listener:
        return ChaosListener(self.inner.listen(address), self)

    def connect(self, address: str,
                timeout: Optional[float] = None) -> Channel:
        return self._wrap(self.inner.connect(address, timeout), "connect")

    def _wrap(self, channel: Channel, side: str) -> ChaosChannel:
        if side == "accept":
            self._accepted += 1
            role = f"accept#{self._accepted}"
        else:
            self._connected += 1
            role = f"connect#{self._connected}"
        return ChaosChannel(channel, self.plan, role, transport=self)

    def _note(self, kind: str) -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        if self.telemetry is not None:
            self.telemetry.registry.counter(f"service.chaos.{kind}").add(1)
