"""The sweep coordinator: job queue, dispatch, heartbeats, reassignment.

One :class:`Coordinator` owns

* a persistent :class:`~repro.service.jobs.JobQueue` of submitted
  :class:`~repro.service.requests.SweepRequest`\\ s,
* a :class:`~repro.experiments.journal.SweepJournal` per active job
  (under ``<state_dir>/jobs/``), written with per-worker attribution
  and service events so ``repro doctor --journal`` and ``repro
  resume`` both understand it,
* a registry of connected workers, each owed a heartbeat every
  ``heartbeat_interval`` seconds — a worker that goes silent past
  ``heartbeat_timeout`` (or whose connection drops, e.g. SIGKILL) is
  declared lost and its in-flight cell is **reassigned**.

Failure semantics deliberately mirror the local worker pool
(:mod:`repro.experiments.workers`): an explicit ``error``/``timeout``/
``crashed`` result — and a lost worker, which is indistinguishable from
a crash — consumes one attempt and is retried with exponential backoff
up to ``retries`` times before the cell is quarantined; an
``InvariantViolation`` result quarantines immediately (a deterministic
modelling defect is not worth re-running); quarantined cells fail the
job but never sink it. Because every transition is journaled the same
way the local harness journals it, killing the coordinator itself loses
nothing: on restart, jobs left ``running`` re-activate and their
journals' ``done`` cells are skipped, bit-identical.

The coordinator is single-threaded: drive it with :meth:`step` (tests)
or :meth:`serve_forever` (the ``repro serve`` loop). It is not
thread-safe; submit over a transport channel instead of calling
:meth:`submit` from another thread.

Hardening (see ``docs/CHAOS.md`` for the guarantees and the chaos
gauntlet that enforces them):

* **Epoch fencing** — every worker registration gets a monotonic
  per-id epoch, echoed in ``welcome`` and stamped by the worker on
  every frame; a frame carrying a stale epoch is dropped and counted
  (``service.fenced``), never applied. A reconnect under the same id
  supersedes the previous registration.
* **Exactly-once application** — results are deduplicated on
  ``(job, cell, attempt)`` and a cell's ``done`` is journaled at most
  once (``service.duplicate`` counts the drops), so duplicated or
  delayed frames after a reassignment cannot double-apply. A late
  ``done`` from a non-assignee still *salvages* the cell if it has not
  been applied yet — a completed-but-unsent result that survived a
  reconnect is work we keep.
* **Malformed frames** — a non-JSON or schema-violating frame drops
  only the offending channel, counted as ``service.malformed``; the
  pump loop never dies for it.
* **Admission control** — ``max_pending`` bounds the open-job queue;
  excess submits get a structured ``rejected`` reply
  (``service.rejected``), as do submits during drain
  (:meth:`begin_drain`, entered by ``repro serve`` exit-linger).
* **Assignment timeout** — with ``assign_timeout`` set, a cell
  in flight longer than the limit is reassigned (one attempt
  consumed), so a dropped ``assign`` or ``result`` frame cannot
  wedge a job forever.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..experiments.journal import SweepJournal
from ..experiments.workers import CellSpec
from . import protocol
from .jobs import Job, JobQueue
from .requests import SweepRequest
from .transport import Channel, ChannelClosed, Listener, MalformedFrame

__all__ = ["Coordinator", "WorkerState", "COUNTERS"]

#: Counter names every coordinator tracks (and mirrors into telemetry
#: as ``service.*`` — see docs/OBSERVABILITY.md).
COUNTERS = ("jobs_submitted", "jobs_completed", "jobs_failed",
            "dispatched", "results", "resumed_cells", "reassigned",
            "workers_lost", "heartbeats",
            "fenced", "duplicate", "malformed", "rejected", "reconnects")


@dataclass
class WorkerState:
    """Liveness and load of one connected worker."""

    id: str
    channel: Channel
    pid: Optional[int] = None
    epoch: int = 1
    last_seen: float = 0.0
    inflight: Optional[Tuple[str, str, int]] = None   # (job, key, attempt)
    assigned_at: float = 0.0
    completed: int = 0
    lost: bool = False
    lost_reason: Optional[str] = None


@dataclass
class _ActiveJob:
    """Dispatch state of the job currently being executed."""

    job: Job
    request: SweepRequest
    journal: SweepJournal
    journal_path: str
    specs: Dict[str, CellSpec]
    #: (key, attempt, not_before) — ready cells plus backoff holds.
    pending: Deque[Tuple[str, int, float]] = field(default_factory=deque)
    inflight: Dict[str, str] = field(default_factory=dict)  # key -> worker
    done: int = 0
    resumed: int = 0
    quarantined: List[str] = field(default_factory=list)
    failures: Dict[str, List[str]] = field(default_factory=dict)
    #: keys whose ``done`` has been journal-applied (exactly-once guard).
    applied: Set[str] = field(default_factory=set)
    #: (key, attempt) result frames already processed (duplicate guard).
    seen: Set[Tuple[str, int]] = field(default_factory=set)

    def next_ready(self, now: float) -> Optional[Tuple[str, int]]:
        for index, (key, attempt, not_before) in enumerate(self.pending):
            if not_before <= now:
                del self.pending[index]
                return key, attempt
        return None

    def drop_pending(self, key: str) -> None:
        """Forget any scheduled (re)dispatch of ``key``."""
        self.pending = deque(item for item in self.pending
                             if item[0] != key)

    def finished(self) -> bool:
        return not self.pending and not self.inflight

    def progress(self) -> Dict[str, int]:
        return {"total": len(self.specs), "done": self.done,
                "resumed": self.resumed, "pending": len(self.pending),
                "inflight": len(self.inflight),
                "quarantined": len(self.quarantined)}


class Coordinator:
    """Owns the queue, the workers and the journals. Single-threaded."""

    def __init__(self, state_dir: str, listener: Listener, *,
                 out_dir: Optional[str] = None,
                 retries: int = 1,
                 backoff: float = 0.05,
                 heartbeat_timeout: float = 3.0,
                 assign_timeout: Optional[float] = None,
                 max_pending: Optional[int] = None,
                 telemetry=None,
                 log: Optional[Callable[[str], None]] = None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be positive, "
                             f"got {heartbeat_timeout}")
        if assign_timeout is not None and assign_timeout <= 0:
            raise ValueError(f"assign_timeout must be positive, "
                             f"got {assign_timeout}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.state_dir = os.fspath(state_dir)
        self.listener = listener
        self.out_dir = out_dir
        self.retries = retries
        self.backoff = backoff
        self.heartbeat_timeout = heartbeat_timeout
        self.assign_timeout = assign_timeout
        self.max_pending = max_pending
        self.telemetry = telemetry
        self._log = log
        self.queue = JobQueue.load(os.path.join(self.state_dir,
                                                "queue.jsonl"))
        self.workers: Dict[str, WorkerState] = {}
        self.active: Optional[_ActiveJob] = None
        self._unclassified: List[Channel] = []
        self._worker_seq = 0
        self._epochs: Dict[str, int] = {}
        self._draining = False
        self._stopped = False
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        if telemetry is not None:
            # Register the whole service.* subtree eagerly so the
            # metrics exist (at zero) from the first snapshot.
            registry = telemetry.registry
            for name in COUNTERS:
                registry.counter(f"service.{name.replace('_', '.')}")
            registry.gauge("service.queue.depth")
            registry.gauge("service.workers.live")
            registry.histogram("service.heartbeat.lag")

    # ----------------------------------------------------------- helpers
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                f"service.{name.replace('_', '.')}").add(amount)

    def _gauges(self) -> None:
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        depth = 0
        if self.active is not None:
            depth = len(self.active.pending) + len(self.active.inflight)
        registry.gauge("service.queue.depth").set(depth)
        registry.gauge("service.workers.live").set(
            sum(1 for worker in self.workers.values() if not worker.lost))

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def journal_path_for(self, job_id: str) -> str:
        return os.path.join(self.state_dir, "jobs",
                            f"{job_id}.journal.jsonl")

    # ------------------------------------------------------------ submit
    def submit(self, request: Dict) -> Job:
        """Validate and enqueue one sweep request; returns its job."""
        parsed = SweepRequest.from_dict(request)
        if self.out_dir is not None and "out_dir" not in request:
            parsed = parsed.with_out_dir(self.out_dir)
        job = self.queue.submit(parsed.to_dict())
        self._count("jobs_submitted")
        self._say(f"{job.id}: queued {parsed.figure} "
                  f"(sizes {list(parsed.resolved_sizes)}, "
                  f"scale {parsed.scale:g})")
        return job

    # -------------------------------------------------------------- step
    def step(self) -> bool:
        """One scheduling pass; returns True if anything progressed."""
        progress = self._accept()
        progress |= self._classify()
        progress |= self._pump_workers()
        progress |= self._check_heartbeats()
        progress |= self._check_assignments()
        progress |= self._activate_next()
        if self.active is not None:
            progress |= self._dispatch()
            if self.active.finished():
                self._finalize()
                progress = True
        self._gauges()
        return progress

    def serve_forever(self, poll_interval: float = 0.02) -> None:
        while not self._stopped:
            if not self.step():
                time.sleep(poll_interval)

    def stop(self) -> None:
        self._stopped = True

    def begin_drain(self) -> None:
        """Refuse new submits from now on; keep answering status.

        ``repro serve`` enters drain when its exit-linger starts, so a
        ``submit`` racing the shutdown gets a deterministic
        ``rejected: shutting-down`` reply instead of a hang.
        """
        if not self._draining:
            self._draining = True
            self._say("draining: new submits will be rejected")

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def stopped(self) -> bool:
        return self._stopped

    def close(self) -> None:
        """Release sockets and files; active journal state stays on disk."""
        self.stop()
        for worker in self.workers.values():
            try:
                worker.channel.send(protocol.stop())
            except ChannelClosed:
                pass
            worker.channel.close()
        for channel in self._unclassified:
            channel.close()
        self._unclassified.clear()
        if self.active is not None:
            self.active.journal.close()
        self.queue.close()
        self.listener.close()

    # ------------------------------------------------------- connections
    def _accept(self) -> bool:
        progress = False
        while True:
            try:
                channel = self.listener.accept(0)
            except ChannelClosed:   # listener torn down underneath us
                return progress
            if channel is None:
                return progress
            self._unclassified.append(channel)
            progress = True

    def _classify(self) -> bool:
        progress = False
        for channel in list(self._unclassified):
            try:
                message = channel.recv(0)
            except ChannelClosed:
                self._unclassified.remove(channel)
                channel.close()
                continue
            except MalformedFrame as exc:
                # Garbage before we even know who is talking: count it,
                # drop only this channel, keep serving everyone else.
                self._unclassified.remove(channel)
                channel.close()
                self._note_malformed(str(exc))
                progress = True
                continue
            if message is None:
                continue
            self._unclassified.remove(channel)
            self._handle_first(channel, message)
            progress = True
        return progress

    def _handle_first(self, channel: Channel, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "hello":
            self._register_worker(channel, message)
            return
        # Client channels are one-shot: reply, then close.
        try:
            if kind == "submit":
                self._handle_submit(channel, message)
            elif kind == "status":
                channel.send(protocol.status_reply(self.status()))
            else:
                channel.send(protocol.error_reply(
                    f"unknown request kind {kind!r}"))
        except ChannelClosed:
            pass
        channel.close()

    def _handle_submit(self, channel: Channel, message: Dict) -> None:
        if self._draining:
            self._reject(channel, "shutting-down",
                         queue=self.queue.counts())
            return
        open_jobs = self.queue.open_count()
        if self.max_pending is not None and open_jobs >= self.max_pending:
            self._reject(channel, "queue-full",
                         depth=open_jobs, limit=self.max_pending)
            return
        try:
            job = self.submit(message.get("request") or {})
        except ValueError as exc:
            channel.send(protocol.error_reply(str(exc)))
        else:
            channel.send(protocol.submitted(job.id))

    def _reject(self, channel: Channel, reason: str, **fields) -> None:
        self._count("rejected")
        if self.active is not None:
            self.active.journal.note_service("submit_rejected",
                                             reason=reason)
        self._say(f"rejected submit: {reason}")
        channel.send(protocol.rejected(reason, **fields))

    def _register_worker(self, channel: Channel, message: Dict) -> None:
        self._worker_seq += 1
        worker_id = message.get("worker") or f"w{self._worker_seq}"
        epoch = self._epochs.get(worker_id, 0) + 1
        self._epochs[worker_id] = epoch
        previous = self.workers.get(worker_id)
        if previous is not None:
            self._count("reconnects")
            if not previous.lost:
                # Same id, new channel: the fresh registration wins and
                # the stale one is fenced off (its in-flight cell, if
                # any, is reassigned like any other loss).
                self._lose_worker(previous,
                                  f"superseded by epoch {epoch}",
                                  event="worker_superseded",
                                  count_lost=False)
            elif self.active is not None:
                self.active.journal.note_service("worker_reconnect",
                                                 worker=worker_id,
                                                 epoch=epoch)
        worker = WorkerState(id=worker_id, channel=channel,
                             pid=message.get("pid"), epoch=epoch,
                             last_seen=time.monotonic())
        self.workers[worker_id] = worker
        try:
            channel.send(protocol.welcome(worker_id, epoch))
        except ChannelClosed:
            self._lose_worker(worker, "welcome undeliverable",
                              event="worker_lost")
            return
        self._say(f"worker {worker_id} connected (epoch {epoch})"
                  + (f" (pid {worker.pid})" if worker.pid else ""))

    # ----------------------------------------------------------- workers
    def _pump_workers(self) -> bool:
        progress = False
        for worker in list(self.workers.values()):
            if worker.lost:
                continue
            while True:
                try:
                    message = worker.channel.recv(0)
                except ChannelClosed:
                    self._lose_worker(worker, "connection closed",
                                      event="worker_lost")
                    break
                except MalformedFrame as exc:
                    # A corrupt frame means the stream can no longer be
                    # trusted; drop this channel only — the pump loop
                    # and every other worker keep going.
                    self._note_malformed(str(exc), worker=worker.id)
                    self._lose_worker(worker, "malformed frame",
                                      event="worker_lost")
                    progress = True
                    break
                if message is None:
                    break
                progress = True
                self._on_worker_message(worker, message)
                if worker.lost:
                    break
        return progress

    def _note_malformed(self, detail: str, *,
                        worker: Optional[str] = None) -> None:
        self._count("malformed")
        if self.active is not None:
            fields = {"worker": worker} if worker is not None else {}
            self.active.journal.note_service("malformed_frame", **fields)
        self._say(f"dropped malformed frame: {detail}")

    def _on_worker_message(self, worker: WorkerState, message: Dict) -> None:
        now = time.monotonic()
        kind = message.get("kind")
        epoch = message.get("epoch")
        if epoch is not None and epoch != worker.epoch:
            # Provably from a superseded registration of this id.
            self._count("fenced")
            if kind == "result" and self.active is not None:
                self.active.journal.note_service(
                    "epoch_fence", worker=worker.id,
                    key=message.get("key"), stale_epoch=epoch,
                    epoch=worker.epoch)
            self._say(f"fenced {kind or '?'} from {worker.id} "
                      f"(epoch {epoch}, current {worker.epoch})")
            return
        if kind == "heartbeat":
            lag = now - worker.last_seen
            worker.last_seen = now
            self._count("heartbeats")
            if self.telemetry is not None:
                self.telemetry.registry.histogram(
                    "service.heartbeat.lag").observe(lag)
            return
        worker.last_seen = now
        if kind == "result":
            self._on_result(worker, message)
        elif kind == "goodbye":
            self._lose_worker(worker, "said goodbye", event="worker_left",
                              count_lost=worker.inflight is not None)
        # anything else: forward-compatible noise, liveness already noted

    def _check_heartbeats(self) -> bool:
        now = time.monotonic()
        progress = False
        for worker in list(self.workers.values()):
            if worker.lost:
                continue
            silent = now - worker.last_seen
            if silent > self.heartbeat_timeout:
                self._lose_worker(
                    worker,
                    f"missed heartbeat deadline ({silent:.1f}s silent, "
                    f"limit {self.heartbeat_timeout:g}s)",
                    event="heartbeat_loss")
                progress = True
        return progress

    def _check_assignments(self) -> bool:
        """Reassign cells stuck in flight past ``assign_timeout``.

        A dropped ``assign`` or ``result`` frame leaves a healthy,
        heartbeating worker holding a cell forever; the timeout turns
        that wedge into an ordinary consumed attempt. The worker stays
        registered — if it was actually computing, its eventual
        ``done`` is salvaged (or deduplicated) by the result path.
        """
        if self.assign_timeout is None:
            return False
        now = time.monotonic()
        progress = False
        for worker in list(self.workers.values()):
            if worker.lost or worker.inflight is None:
                continue
            stalled = now - worker.assigned_at
            if stalled <= self.assign_timeout:
                continue
            job_id, key, attempt = worker.inflight
            worker.inflight = None
            active = self.active
            if active is None or active.job.id != job_id:
                continue
            if active.inflight.get(key) == worker.id:
                active.inflight.pop(key, None)
            active.journal.note_service("assign_timeout", worker=worker.id,
                                        key=key, attempt=attempt)
            self._attempt_failed(
                active, key, attempt,
                f"assignment to {worker.id} stalled "
                f"({stalled:.1f}s > {self.assign_timeout:g}s)",
                "timeout", reassign_from=worker.id)
            progress = True
        return progress

    def _lose_worker(self, worker: WorkerState, reason: str, *,
                     event: str, count_lost: bool = True) -> None:
        if worker.lost:
            return
        worker.lost = True
        worker.lost_reason = reason
        worker.channel.close()
        if count_lost:
            self._count("workers_lost")
        self._say(f"worker {worker.id} lost: {reason}")
        inflight = worker.inflight
        worker.inflight = None
        active = self.active
        if active is not None and (count_lost or inflight is not None):
            active.journal.note_service(event, worker=worker.id,
                                        reason=reason)
        if inflight is None:
            return
        job_id, key, attempt = inflight
        if active is None or active.job.id != job_id:
            return   # the job already finished without this cell
        if active.inflight.get(key) != worker.id:
            return   # the cell already moved on (salvaged or reassigned)
        active.inflight.pop(key, None)
        # A lost worker is indistinguishable from a crashed one: the
        # attempt is spent, exactly as the local pool counts it.
        self._attempt_failed(active, key, attempt,
                             f"worker {worker.id} lost mid-cell ({reason})",
                             "crashed", reassign_from=worker.id)

    # ----------------------------------------------------------- results
    def _on_result(self, worker: WorkerState, message: Dict) -> None:
        job_id = message.get("job")
        key = message.get("key")
        attempt = message.get("attempt", 0)
        status = message.get("status")
        if (not isinstance(job_id, str) or not isinstance(key, str)
                or isinstance(attempt, bool) or not isinstance(attempt, int)
                or status not in protocol.RESULT_STATUSES):
            # Valid JSON, broken schema: same treatment as line noise.
            self._note_malformed(
                f"schema-violating result from {worker.id}",
                worker=worker.id)
            self._lose_worker(worker, "schema-violating result",
                              event="worker_lost")
            return
        if worker.inflight == (job_id, key, attempt):
            worker.inflight = None
        active = self.active
        if (active is None or active.job.id != job_id
                or key not in active.specs):
            self._say(f"ignoring stale result for {key} "
                      f"from worker {worker.id}")
            return
        if key in active.applied or (key, attempt) in active.seen:
            # Exactly-once guard: this (job, cell, attempt) — or the
            # cell's terminal state — was already applied. Drop it.
            self._count("duplicate")
            active.journal.note_service("duplicate_dropped",
                                        worker=worker.id, key=key,
                                        attempt=attempt)
            self._say(f"dropped duplicate result for {key} "
                      f"(attempt {attempt}) from worker {worker.id}")
            return
        assignee = active.inflight.get(key)
        if assignee != worker.id and status != "done":
            # A failure report for an assignment that is no longer this
            # worker's: the live assignment decides the cell's fate.
            self._count("fenced")
            self._say(f"ignoring stale {status} result for {key} "
                      f"from worker {worker.id}")
            return
        if assignee is not None and assignee != worker.id:
            # Completed-but-unsent result salvaged after reassignment:
            # first result wins; un-assign the other copy (its eventual
            # duplicate is dropped by the guard above).
            other = self.workers.get(assignee)
            if (other is not None and other.inflight is not None
                    and other.inflight[1] == key):
                other.inflight = None
            self._say(f"salvaged {key} from worker {worker.id}; "
                      f"withdrawing the copy on {assignee}")
        active.seen.add((key, attempt))
        active.inflight.pop(key, None)
        if status == "done":
            # A done result also cancels any scheduled retry of the key.
            active.drop_pending(key)
        self._count("results")
        if status == "done":
            worker.completed += 1
            active.done += 1
            active.applied.add(key)
            active.journal.note_cell(key, "done", attempt=attempt,
                                     result=message.get("result"),
                                     worker=worker.id)
        elif status == "violation":
            self._quarantine(active, key, attempt,
                             message.get("error") or "invariant violation",
                             violation=message.get("violation"),
                             worker=worker.id)
        else:   # error / timeout / crashed
            self._attempt_failed(active, key, attempt,
                                 message.get("error") or status, status,
                                 worker=worker.id)

    def _attempt_failed(self, active: _ActiveJob, key: str, attempt: int,
                        error: str, kind: str, *,
                        worker: Optional[str] = None,
                        reassign_from: Optional[str] = None) -> None:
        active.failures.setdefault(key, []).append(error)
        active.journal.note_cell(key, "failed", attempt=attempt,
                                 error=_last_line(error), worker=worker)
        if attempt < self.retries:
            not_before = time.monotonic() + self.backoff * (2 ** attempt)
            active.pending.append((key, attempt + 1, not_before))
            if reassign_from is not None:
                active.journal.note_service("reassign", key=key,
                                            attempt=attempt + 1,
                                            worker=reassign_from)
                self._count("reassigned")
                self._say(f"{active.job.id}: reassigning {key} "
                          f"(attempt {attempt + 1})")
        else:
            self._quarantine(active, key, attempt, error, worker=worker)

    def _quarantine(self, active: _ActiveJob, key: str, attempt: int,
                    error: str, violation: Optional[Dict] = None,
                    worker: Optional[str] = None) -> None:
        active.quarantined.append(key)
        # Quarantine is terminal too: a late result for the key must be
        # dropped as a duplicate, not resurrect the cell.
        active.applied.add(key)
        active.journal.note_cell(key, "quarantined", attempt=attempt,
                                 error=_last_line(error),
                                 violation=violation, worker=worker)
        self._say(f"{active.job.id}: quarantined {key}: "
                  f"{_last_line(error)}")

    # -------------------------------------------------------------- jobs
    def _activate_next(self) -> bool:
        if self.active is not None:
            return False
        for job in self.queue.pending():
            if self._activate(job):
                return True
        return False

    def _activate(self, job: Job) -> bool:
        try:
            request = SweepRequest.from_dict(job.request)
            specs = {spec.key: spec for spec in request.cells()}
        except ValueError as exc:
            self.queue.update(job.id, "failed", error=str(exc))
            self._count("jobs_failed")
            self._say(f"{job.id}: rejected: {exc}")
            return False
        journal_path = self.journal_path_for(job.id)
        journal = SweepJournal.load(journal_path)
        if not journal.meta:
            journal.note_sweep(request.meta())
        active = _ActiveJob(job=job, request=request, journal=journal,
                            journal_path=journal_path, specs=specs)
        now = time.monotonic()
        for key, spec in specs.items():
            state = journal.cells.get(key)
            if (state is not None and state.status == "done"
                    and state.config_hash == spec.config_hash()
                    and state.result is not None):
                active.done += 1
                active.resumed += 1
                active.applied.add(key)
                continue
            if state is None or state.config_hash != spec.config_hash():
                journal.note_cell(key, "pending", spec=spec.to_dict(),
                                  config_hash=spec.config_hash())
            active.pending.append((key, 0, now))
        self._count("resumed_cells", active.resumed)
        if job.status != "running":
            self.queue.update(job.id, "running")
        self.active = active
        self._say(f"{job.id}: running {request.figure} — "
                  f"{len(active.pending)} cell(s) to go, "
                  f"{active.resumed} already done")
        return True

    def _dispatch(self) -> bool:
        active = self.active
        progress = False
        now = time.monotonic()
        for worker in list(self.workers.values()):
            if worker.lost or worker.inflight is not None:
                continue
            ready = active.next_ready(now)
            if ready is None:
                break
            key, attempt = ready
            spec = active.specs[key]
            worker.inflight = (active.job.id, key, attempt)
            worker.assigned_at = now
            active.inflight[key] = worker.id
            active.journal.note_cell(key, "running", attempt=attempt,
                                     worker=worker.id)
            self._count("dispatched")
            try:
                worker.channel.send(protocol.assign(
                    active.job.id, key, spec.to_dict(), attempt))
            except ChannelClosed:
                self._lose_worker(worker, "send failed",
                                  event="worker_lost")
                continue
            progress = True
        return progress

    def _finalize(self) -> None:
        active = self.active
        self.active = None
        active.journal.close()
        job = active.job
        if active.quarantined:
            keys = ", ".join(sorted(active.quarantined))
            self.queue.update(
                job.id, "failed",
                error=f"{len(active.quarantined)} cell(s) quarantined: "
                      f"{keys}")
            self._count("jobs_failed")
            self._say(f"{job.id}: FAILED — {len(active.quarantined)} "
                      f"cell(s) quarantined ({keys}); journal: "
                      f"{active.journal_path}")
            return
        try:
            active.request.finalize(active.journal_path)
        except Exception as exc:   # artifact write / reload failure
            self.queue.update(job.id, "failed",
                              error=f"finalize failed: {exc}")
            self._count("jobs_failed")
            self._say(f"{job.id}: finalize FAILED: {exc}")
            return
        self.queue.update(job.id, "done")
        self._count("jobs_completed")
        self._say(f"{job.id}: done — {active.done} cell(s) "
                  f"({active.resumed} resumed); artifacts in "
                  f"{active.request.out_dir}/")

    # ------------------------------------------------------------ status
    def status(self) -> Dict:
        """A JSON-friendly snapshot for ``repro status``."""
        now = time.monotonic()
        jobs = []
        for job_id in self.queue._order:
            job = self.queue.jobs[job_id]
            entry = {"id": job.id, "status": job.status,
                     "figure": job.request.get("figure"),
                     "error": job.error}
            if self.active is not None and self.active.job.id == job.id:
                entry.update(self.active.progress())
            jobs.append(entry)
        workers = []
        for worker in self.workers.values():
            workers.append({
                "id": worker.id, "pid": worker.pid, "epoch": worker.epoch,
                "lost": worker.lost, "lost_reason": worker.lost_reason,
                "completed": worker.completed,
                "inflight": worker.inflight[1] if worker.inflight else None,
                "heartbeat_age": round(now - worker.last_seen, 3),
            })
        return {
            "address": self.listener.address,
            "draining": self._draining,
            "queue": self.queue.counts(),
            "jobs": jobs,
            "workers": workers,
            "counters": dict(self.counters),
        }


def _last_line(text: str) -> str:
    lines = [line.strip() for line in text.strip().splitlines()
             if line.strip()]
    return lines[-1] if lines else ""
