"""The sweep coordinator: job queue, dispatch, heartbeats, reassignment.

One :class:`Coordinator` owns

* a persistent :class:`~repro.service.jobs.JobQueue` of submitted
  :class:`~repro.service.requests.SweepRequest`\\ s,
* a :class:`~repro.experiments.journal.SweepJournal` per active job
  (under ``<state_dir>/jobs/``), written with per-worker attribution
  and service events so ``repro doctor --journal`` and ``repro
  resume`` both understand it,
* a registry of connected workers, each owed a heartbeat every
  ``heartbeat_interval`` seconds — a worker that goes silent past
  ``heartbeat_timeout`` (or whose connection drops, e.g. SIGKILL) is
  declared lost and its in-flight cell is **reassigned**.

Failure semantics deliberately mirror the local worker pool
(:mod:`repro.experiments.workers`): an explicit ``error``/``timeout``/
``crashed`` result — and a lost worker, which is indistinguishable from
a crash — consumes one attempt and is retried with exponential backoff
up to ``retries`` times before the cell is quarantined; an
``InvariantViolation`` result quarantines immediately (a deterministic
modelling defect is not worth re-running); quarantined cells fail the
job but never sink it. Because every transition is journaled the same
way the local harness journals it, killing the coordinator itself loses
nothing: on restart, jobs left ``running`` re-activate and their
journals' ``done`` cells are skipped, bit-identical.

The coordinator is single-threaded: drive it with :meth:`step` (tests)
or :meth:`serve_forever` (the ``repro serve`` loop). It is not
thread-safe; submit over a transport channel instead of calling
:meth:`submit` from another thread.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..experiments.journal import SweepJournal
from ..experiments.workers import CellSpec
from . import protocol
from .jobs import Job, JobQueue
from .requests import SweepRequest
from .transport import Channel, ChannelClosed, Listener

__all__ = ["Coordinator", "WorkerState", "COUNTERS"]

#: Counter names every coordinator tracks (and mirrors into telemetry
#: as ``service.*`` — see docs/OBSERVABILITY.md).
COUNTERS = ("jobs_submitted", "jobs_completed", "jobs_failed",
            "dispatched", "results", "resumed_cells", "reassigned",
            "workers_lost", "heartbeats")


@dataclass
class WorkerState:
    """Liveness and load of one connected worker."""

    id: str
    channel: Channel
    pid: Optional[int] = None
    last_seen: float = 0.0
    inflight: Optional[Tuple[str, str, int]] = None   # (job, key, attempt)
    completed: int = 0
    lost: bool = False
    lost_reason: Optional[str] = None


@dataclass
class _ActiveJob:
    """Dispatch state of the job currently being executed."""

    job: Job
    request: SweepRequest
    journal: SweepJournal
    journal_path: str
    specs: Dict[str, CellSpec]
    #: (key, attempt, not_before) — ready cells plus backoff holds.
    pending: Deque[Tuple[str, int, float]] = field(default_factory=deque)
    inflight: Dict[str, str] = field(default_factory=dict)  # key -> worker
    done: int = 0
    resumed: int = 0
    quarantined: List[str] = field(default_factory=list)
    failures: Dict[str, List[str]] = field(default_factory=dict)

    def next_ready(self, now: float) -> Optional[Tuple[str, int]]:
        for index, (key, attempt, not_before) in enumerate(self.pending):
            if not_before <= now:
                del self.pending[index]
                return key, attempt
        return None

    def finished(self) -> bool:
        return not self.pending and not self.inflight

    def progress(self) -> Dict[str, int]:
        return {"total": len(self.specs), "done": self.done,
                "resumed": self.resumed, "pending": len(self.pending),
                "inflight": len(self.inflight),
                "quarantined": len(self.quarantined)}


class Coordinator:
    """Owns the queue, the workers and the journals. Single-threaded."""

    def __init__(self, state_dir: str, listener: Listener, *,
                 out_dir: Optional[str] = None,
                 retries: int = 1,
                 backoff: float = 0.05,
                 heartbeat_timeout: float = 3.0,
                 telemetry=None,
                 log: Optional[Callable[[str], None]] = None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be positive, "
                             f"got {heartbeat_timeout}")
        self.state_dir = os.fspath(state_dir)
        self.listener = listener
        self.out_dir = out_dir
        self.retries = retries
        self.backoff = backoff
        self.heartbeat_timeout = heartbeat_timeout
        self.telemetry = telemetry
        self._log = log
        self.queue = JobQueue.load(os.path.join(self.state_dir,
                                                "queue.jsonl"))
        self.workers: Dict[str, WorkerState] = {}
        self.active: Optional[_ActiveJob] = None
        self._unclassified: List[Channel] = []
        self._worker_seq = 0
        self._stopped = False
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        if telemetry is not None:
            # Register the whole service.* subtree eagerly so the
            # metrics exist (at zero) from the first snapshot.
            registry = telemetry.registry
            for name in COUNTERS:
                registry.counter(f"service.{name.replace('_', '.')}")
            registry.gauge("service.queue.depth")
            registry.gauge("service.workers.live")
            registry.histogram("service.heartbeat.lag")

    # ----------------------------------------------------------- helpers
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                f"service.{name.replace('_', '.')}").add(amount)

    def _gauges(self) -> None:
        if self.telemetry is None:
            return
        registry = self.telemetry.registry
        depth = 0
        if self.active is not None:
            depth = len(self.active.pending) + len(self.active.inflight)
        registry.gauge("service.queue.depth").set(depth)
        registry.gauge("service.workers.live").set(
            sum(1 for worker in self.workers.values() if not worker.lost))

    def _say(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def journal_path_for(self, job_id: str) -> str:
        return os.path.join(self.state_dir, "jobs",
                            f"{job_id}.journal.jsonl")

    # ------------------------------------------------------------ submit
    def submit(self, request: Dict) -> Job:
        """Validate and enqueue one sweep request; returns its job."""
        parsed = SweepRequest.from_dict(request)
        if self.out_dir is not None and "out_dir" not in request:
            parsed = parsed.with_out_dir(self.out_dir)
        job = self.queue.submit(parsed.to_dict())
        self._count("jobs_submitted")
        self._say(f"{job.id}: queued {parsed.figure} "
                  f"(sizes {list(parsed.resolved_sizes)}, "
                  f"scale {parsed.scale:g})")
        return job

    # -------------------------------------------------------------- step
    def step(self) -> bool:
        """One scheduling pass; returns True if anything progressed."""
        progress = self._accept()
        progress |= self._classify()
        progress |= self._pump_workers()
        progress |= self._check_heartbeats()
        progress |= self._activate_next()
        if self.active is not None:
            progress |= self._dispatch()
            if self.active.finished():
                self._finalize()
                progress = True
        self._gauges()
        return progress

    def serve_forever(self, poll_interval: float = 0.02) -> None:
        while not self._stopped:
            if not self.step():
                time.sleep(poll_interval)

    def stop(self) -> None:
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    def close(self) -> None:
        """Release sockets and files; active journal state stays on disk."""
        self.stop()
        for worker in self.workers.values():
            try:
                worker.channel.send(protocol.stop())
            except ChannelClosed:
                pass
            worker.channel.close()
        for channel in self._unclassified:
            channel.close()
        self._unclassified.clear()
        if self.active is not None:
            self.active.journal.close()
        self.queue.close()
        self.listener.close()

    # ------------------------------------------------------- connections
    def _accept(self) -> bool:
        progress = False
        while True:
            try:
                channel = self.listener.accept(0)
            except ChannelClosed:   # listener torn down underneath us
                return progress
            if channel is None:
                return progress
            self._unclassified.append(channel)
            progress = True

    def _classify(self) -> bool:
        progress = False
        for channel in list(self._unclassified):
            try:
                message = channel.recv(0)
            except ChannelClosed:
                self._unclassified.remove(channel)
                channel.close()
                continue
            if message is None:
                continue
            self._unclassified.remove(channel)
            self._handle_first(channel, message)
            progress = True
        return progress

    def _handle_first(self, channel: Channel, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "hello":
            self._register_worker(channel, message)
            return
        # Client channels are one-shot: reply, then close.
        try:
            if kind == "submit":
                try:
                    job = self.submit(message.get("request") or {})
                except ValueError as exc:
                    channel.send(protocol.error_reply(str(exc)))
                else:
                    channel.send(protocol.submitted(job.id))
            elif kind == "status":
                channel.send(protocol.status_reply(self.status()))
            else:
                channel.send(protocol.error_reply(
                    f"unknown request kind {kind!r}"))
        except ChannelClosed:
            pass
        channel.close()

    def _register_worker(self, channel: Channel, message: Dict) -> None:
        self._worker_seq += 1
        worker_id = message.get("worker") or f"w{self._worker_seq}"
        if worker_id in self.workers:
            worker_id = f"{worker_id}.{self._worker_seq}"
        worker = WorkerState(id=worker_id, channel=channel,
                             pid=message.get("pid"),
                             last_seen=time.monotonic())
        self.workers[worker_id] = worker
        self._say(f"worker {worker_id} connected"
                  + (f" (pid {worker.pid})" if worker.pid else ""))

    # ----------------------------------------------------------- workers
    def _pump_workers(self) -> bool:
        progress = False
        for worker in list(self.workers.values()):
            if worker.lost:
                continue
            while True:
                try:
                    message = worker.channel.recv(0)
                except ChannelClosed:
                    self._lose_worker(worker, "connection closed",
                                      event="worker_lost")
                    break
                if message is None:
                    break
                progress = True
                self._on_worker_message(worker, message)
                if worker.lost:
                    break
        return progress

    def _on_worker_message(self, worker: WorkerState, message: Dict) -> None:
        now = time.monotonic()
        kind = message.get("kind")
        if kind == "heartbeat":
            lag = now - worker.last_seen
            worker.last_seen = now
            self._count("heartbeats")
            if self.telemetry is not None:
                self.telemetry.registry.histogram(
                    "service.heartbeat.lag").observe(lag)
            return
        worker.last_seen = now
        if kind == "result":
            self._on_result(worker, message)
        elif kind == "goodbye":
            self._lose_worker(worker, "said goodbye", event="worker_left",
                              count_lost=worker.inflight is not None)
        # anything else: forward-compatible noise, liveness already noted

    def _check_heartbeats(self) -> bool:
        now = time.monotonic()
        progress = False
        for worker in list(self.workers.values()):
            if worker.lost:
                continue
            silent = now - worker.last_seen
            if silent > self.heartbeat_timeout:
                self._lose_worker(
                    worker,
                    f"missed heartbeat deadline ({silent:.1f}s silent, "
                    f"limit {self.heartbeat_timeout:g}s)",
                    event="heartbeat_loss")
                progress = True
        return progress

    def _lose_worker(self, worker: WorkerState, reason: str, *,
                     event: str, count_lost: bool = True) -> None:
        if worker.lost:
            return
        worker.lost = True
        worker.lost_reason = reason
        worker.channel.close()
        if count_lost:
            self._count("workers_lost")
        self._say(f"worker {worker.id} lost: {reason}")
        inflight = worker.inflight
        worker.inflight = None
        active = self.active
        if active is not None and (count_lost or inflight is not None):
            active.journal.note_service(event, worker=worker.id,
                                        reason=reason)
        if inflight is None:
            return
        job_id, key, attempt = inflight
        if active is None or active.job.id != job_id:
            return   # the job already finished without this cell
        active.inflight.pop(key, None)
        # A lost worker is indistinguishable from a crashed one: the
        # attempt is spent, exactly as the local pool counts it.
        self._attempt_failed(active, key, attempt,
                             f"worker {worker.id} lost mid-cell ({reason})",
                             "crashed", reassign_from=worker.id)

    # ----------------------------------------------------------- results
    def _on_result(self, worker: WorkerState, message: Dict) -> None:
        active = self.active
        job_id = message.get("job")
        key = message.get("key")
        if (active is None or active.job.id != job_id
                or active.inflight.get(key) != worker.id):
            # Stale result (e.g. from a worker we already declared lost
            # whose cell was re-dispatched): the journal keeps the copy
            # that the current assignment produces.
            self._say(f"ignoring stale result for {key} "
                      f"from worker {worker.id}")
            return
        worker.inflight = None
        active.inflight.pop(key, None)
        self._count("results")
        attempt = message.get("attempt", 0)
        status = message.get("status")
        if status == "done":
            worker.completed += 1
            active.done += 1
            active.journal.note_cell(key, "done", attempt=attempt,
                                     result=message.get("result"),
                                     worker=worker.id)
        elif status == "violation":
            self._quarantine(active, key, attempt,
                             message.get("error") or "invariant violation",
                             violation=message.get("violation"),
                             worker=worker.id)
        elif status in ("error", "timeout", "crashed"):
            self._attempt_failed(active, key, attempt,
                                 message.get("error") or status, status,
                                 worker=worker.id)
        else:
            self._attempt_failed(active, key, attempt,
                                 f"malformed result status {status!r}",
                                 "error", worker=worker.id)

    def _attempt_failed(self, active: _ActiveJob, key: str, attempt: int,
                        error: str, kind: str, *,
                        worker: Optional[str] = None,
                        reassign_from: Optional[str] = None) -> None:
        active.failures.setdefault(key, []).append(error)
        active.journal.note_cell(key, "failed", attempt=attempt,
                                 error=_last_line(error), worker=worker)
        if attempt < self.retries:
            not_before = time.monotonic() + self.backoff * (2 ** attempt)
            active.pending.append((key, attempt + 1, not_before))
            if reassign_from is not None:
                active.journal.note_service("reassign", key=key,
                                            attempt=attempt + 1,
                                            worker=reassign_from)
                self._count("reassigned")
                self._say(f"{active.job.id}: reassigning {key} "
                          f"(attempt {attempt + 1})")
        else:
            self._quarantine(active, key, attempt, error, worker=worker)

    def _quarantine(self, active: _ActiveJob, key: str, attempt: int,
                    error: str, violation: Optional[Dict] = None,
                    worker: Optional[str] = None) -> None:
        active.quarantined.append(key)
        active.journal.note_cell(key, "quarantined", attempt=attempt,
                                 error=_last_line(error),
                                 violation=violation, worker=worker)
        self._say(f"{active.job.id}: quarantined {key}: "
                  f"{_last_line(error)}")

    # -------------------------------------------------------------- jobs
    def _activate_next(self) -> bool:
        if self.active is not None:
            return False
        for job in self.queue.pending():
            if self._activate(job):
                return True
        return False

    def _activate(self, job: Job) -> bool:
        try:
            request = SweepRequest.from_dict(job.request)
            specs = {spec.key: spec for spec in request.cells()}
        except ValueError as exc:
            self.queue.update(job.id, "failed", error=str(exc))
            self._count("jobs_failed")
            self._say(f"{job.id}: rejected: {exc}")
            return False
        journal_path = self.journal_path_for(job.id)
        journal = SweepJournal.load(journal_path)
        if not journal.meta:
            journal.note_sweep(request.meta())
        active = _ActiveJob(job=job, request=request, journal=journal,
                            journal_path=journal_path, specs=specs)
        now = time.monotonic()
        for key, spec in specs.items():
            state = journal.cells.get(key)
            if (state is not None and state.status == "done"
                    and state.config_hash == spec.config_hash()
                    and state.result is not None):
                active.done += 1
                active.resumed += 1
                continue
            if state is None or state.config_hash != spec.config_hash():
                journal.note_cell(key, "pending", spec=spec.to_dict(),
                                  config_hash=spec.config_hash())
            active.pending.append((key, 0, now))
        self._count("resumed_cells", active.resumed)
        if job.status != "running":
            self.queue.update(job.id, "running")
        self.active = active
        self._say(f"{job.id}: running {request.figure} — "
                  f"{len(active.pending)} cell(s) to go, "
                  f"{active.resumed} already done")
        return True

    def _dispatch(self) -> bool:
        active = self.active
        progress = False
        now = time.monotonic()
        for worker in list(self.workers.values()):
            if worker.lost or worker.inflight is not None:
                continue
            ready = active.next_ready(now)
            if ready is None:
                break
            key, attempt = ready
            spec = active.specs[key]
            worker.inflight = (active.job.id, key, attempt)
            active.inflight[key] = worker.id
            active.journal.note_cell(key, "running", attempt=attempt,
                                     worker=worker.id)
            self._count("dispatched")
            try:
                worker.channel.send(protocol.assign(
                    active.job.id, key, spec.to_dict(), attempt))
            except ChannelClosed:
                self._lose_worker(worker, "send failed",
                                  event="worker_lost")
                continue
            progress = True
        return progress

    def _finalize(self) -> None:
        active = self.active
        self.active = None
        active.journal.close()
        job = active.job
        if active.quarantined:
            keys = ", ".join(sorted(active.quarantined))
            self.queue.update(
                job.id, "failed",
                error=f"{len(active.quarantined)} cell(s) quarantined: "
                      f"{keys}")
            self._count("jobs_failed")
            self._say(f"{job.id}: FAILED — {len(active.quarantined)} "
                      f"cell(s) quarantined ({keys}); journal: "
                      f"{active.journal_path}")
            return
        try:
            active.request.finalize(active.journal_path)
        except Exception as exc:   # artifact write / reload failure
            self.queue.update(job.id, "failed",
                              error=f"finalize failed: {exc}")
            self._count("jobs_failed")
            self._say(f"{job.id}: finalize FAILED: {exc}")
            return
        self.queue.update(job.id, "done")
        self._count("jobs_completed")
        self._say(f"{job.id}: done — {active.done} cell(s) "
                  f"({active.resumed} resumed); artifacts in "
                  f"{active.request.out_dir}/")

    # ------------------------------------------------------------ status
    def status(self) -> Dict:
        """A JSON-friendly snapshot for ``repro status``."""
        now = time.monotonic()
        jobs = []
        for job_id in self.queue._order:
            job = self.queue.jobs[job_id]
            entry = {"id": job.id, "status": job.status,
                     "figure": job.request.get("figure"),
                     "error": job.error}
            if self.active is not None and self.active.job.id == job.id:
                entry.update(self.active.progress())
            jobs.append(entry)
        workers = []
        for worker in self.workers.values():
            workers.append({
                "id": worker.id, "pid": worker.pid,
                "lost": worker.lost, "lost_reason": worker.lost_reason,
                "completed": worker.completed,
                "inflight": worker.inflight[1] if worker.inflight else None,
                "heartbeat_age": round(now - worker.last_seen, 3),
            })
        return {
            "address": self.listener.address,
            "queue": self.queue.counts(),
            "jobs": jobs,
            "workers": workers,
            "counters": dict(self.counters),
        }


def _last_line(text: str) -> str:
    lines = [line.strip() for line in text.strip().splitlines()
             if line.strip()]
    return lines[-1] if lines else ""
