"""The service worker: execute assigned cells, heartbeat, report back.

A :class:`ServiceWorker` connects a channel to a coordinator, announces
itself (``hello``), waits for the coordinator's ``welcome`` (which
carries its registration **epoch** — see :mod:`.protocol`), then loops:
receive an ``assign``, run the cell, send a ``result``. A daemon thread
sends a ``heartbeat`` every ``heartbeat_interval`` seconds — including
while a cell is running — so the coordinator can tell "busy with a long
simulation" from "dead". Every frame after the handshake is stamped
with the epoch, which is what lets the coordinator fence frames from a
superseded registration.

Cell execution goes through the same
:func:`~repro.experiments.workers.run_cells` machinery as a local
sweep: with ``cell_timeout`` set, each cell runs in its own
subprocess, so a crash or a hang in one pathological configuration is
contained (and reported as ``crashed``/``timeout``, never taking the
worker down), and an interrupt drains the subprocess pool through the
shared :func:`~repro.experiments.workers.drain_pool` path. Without a
timeout the cell runs inline — fastest, with the coordinator's
lost-worker reassignment as the safety net. Retries are the
coordinator's job; a worker reports each attempt's outcome verbatim.

**Reconnect.** Given a ``reconnect`` factory (``repro worker`` passes
one that re-dials the coordinator socket), a dropped connection is not
fatal: the worker backs off exponentially, re-dials, re-registers under
a fresh epoch, and — crucially — re-sends a completed-but-unsent
``result`` it was holding when the connection died, stamped with the
*new* epoch so it is salvaged rather than fenced. A coordinator restart
mid-job therefore costs a handshake, not the work (see
``docs/CHAOS.md``).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional

from ..experiments.artifacts import result_to_dict
from ..experiments.workers import CellSpec, run_cell, run_cells
from . import protocol
from .transport import Channel, ChannelClosed, MalformedFrame, SocketTransport

__all__ = ["ServiceWorker", "worker_main"]


class ServiceWorker:
    """One worker loop bound to a connected channel."""

    def __init__(self, channel: Channel, worker_id: Optional[str] = None, *,
                 heartbeat_interval: float = 0.5,
                 cell_timeout: Optional[float] = None,
                 cell_fn: Callable = run_cell,
                 mp_context: Optional[str] = None,
                 reconnect: Optional[Callable[[], Channel]] = None,
                 reconnect_backoff: float = 0.05,
                 max_reconnects: int = 8,
                 handshake_timeout: float = 5.0):
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be positive, "
                             f"got {heartbeat_interval}")
        if reconnect_backoff <= 0:
            raise ValueError(f"reconnect_backoff must be positive, "
                             f"got {reconnect_backoff}")
        if max_reconnects < 0:
            raise ValueError(f"max_reconnects must be >= 0, "
                             f"got {max_reconnects}")
        self.channel = channel
        self.worker_id = worker_id or f"pid{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        self.cell_timeout = cell_timeout
        self.cell_fn = cell_fn
        self.mp_context = mp_context
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.max_reconnects = max_reconnects
        self.handshake_timeout = handshake_timeout
        self.cells_run = 0
        self.reconnects = 0
        self.epoch: Optional[int] = None
        self._unsent: Optional[Dict] = None
        # Gates the heartbeat thread: beats flow only between a
        # completed handshake and the next disconnect.
        self._ready = threading.Event()

    # --------------------------------------------------------------- run
    def run(self) -> int:
        """Serve until told to stop or the coordinator stays away.

        Returns the number of cells executed.
        """
        stop_beating = threading.Event()
        beater = threading.Thread(target=self._beat, args=(stop_beating,),
                                  name=f"heartbeat-{self.worker_id}",
                                  daemon=True)
        beater.start()
        try:
            if not self._handshake(self.channel) and not self._reconnected():
                return self.cells_run
            while True:
                try:
                    message = self.channel.recv(0.25)
                except ChannelClosed:
                    if self._reconnected():
                        continue
                    break             # coordinator gone; nothing to tell
                if message is None:
                    continue
                kind = message.get("kind")
                if kind == "welcome":
                    # A duplicated welcome; re-adopt the epoch it names.
                    self.epoch = message.get("epoch", self.epoch)
                elif kind == "stop":
                    try:
                        self.channel.send(protocol.goodbye(self.worker_id,
                                                           self.epoch))
                    except ChannelClosed:
                        pass
                    break
                elif kind == "assign":
                    self._run_assignment(message)
        finally:
            stop_beating.set()
            beater.join(self.heartbeat_interval + 1.0)
            self._ready.clear()
            self.channel.close()
        return self.cells_run

    def _handshake(self, channel: Channel) -> bool:
        """hello -> welcome on ``channel``; flush any held result.

        Returns True with ``self.channel``/``self.epoch`` switched over
        on success. A coordinator that assigns work without welcoming
        (a pre-epoch peer) is accepted too, with no epoch stamping.
        """
        self._ready.clear()
        try:
            channel.send(protocol.hello(self.worker_id, os.getpid()))
            deadline = time.monotonic() + self.handshake_timeout
            while time.monotonic() < deadline:
                message = channel.recv(0.1)
                if message is None:
                    continue
                kind = message.get("kind")
                if kind == "welcome":
                    self.epoch = message.get("epoch")
                    break
                if kind == "assign":
                    self.epoch = None
                    self.channel = channel
                    self._flush_unsent()
                    self._ready.set()
                    self._run_assignment(message)
                    return True
                if kind == "stop":
                    return False
            else:
                return False
        except (ChannelClosed, MalformedFrame):
            return False
        self.channel = channel
        try:
            self._flush_unsent()
        except ChannelClosed:
            return False
        self._ready.set()
        return True

    def _reconnected(self) -> bool:
        """Back off, re-dial, re-register; False when out of attempts."""
        if self.reconnect is None:
            return False
        self._ready.clear()
        self.channel.close()
        for attempt in range(self.max_reconnects):
            time.sleep(self.reconnect_backoff * (2 ** attempt))
            try:
                channel = self.reconnect()
            except (OSError, ChannelClosed):
                continue
            if self._handshake(channel):
                self.reconnects += 1
                return True
            channel.close()
        return False

    def _flush_unsent(self) -> None:
        """Deliver the completed-but-unsent result held from before a
        disconnect, re-stamped with the current epoch."""
        if self._unsent is None:
            return
        message = dict(self._unsent)
        if self.epoch is not None:
            message["epoch"] = self.epoch
        else:
            message.pop("epoch", None)
        self.channel.send(message)      # ChannelClosed: caller retries
        self._unsent = None

    def _beat(self, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self._ready.is_set():
                continue
            try:
                self.channel.send(protocol.heartbeat(self.worker_id,
                                                     self.epoch))
            except ChannelClosed:
                # The run loop notices the same disconnect and decides
                # whether to reconnect; keep the thread alive for that.
                continue

    # -------------------------------------------------------------- cells
    def _run_assignment(self, message) -> None:
        job, key, attempt = message["job"], message["key"], message["attempt"]
        spec = CellSpec.from_dict(message["spec"])
        kinds: List[str] = []

        def attempt_failed(_spec, _attempt, _error, kind) -> None:
            kinds.append(kind)

        outcome = run_cells(
            [spec], jobs=1, timeout=self.cell_timeout, retries=0,
            cell_fn=self.cell_fn, on_attempt_failed=attempt_failed,
            mp_context=self.mp_context)[0]
        self.cells_run += 1
        if outcome.status == "done":
            reply = protocol.result(job, key, attempt, "done",
                                    result=result_to_dict(outcome.result),
                                    epoch=self.epoch)
        elif outcome.violation is not None:
            reply = protocol.result(job, key, attempt, "violation",
                                    violation=outcome.violation,
                                    error=outcome.error, epoch=self.epoch)
        else:
            kind = kinds[-1] if kinds else "error"
            reply = protocol.result(job, key, attempt, kind,
                                    error=outcome.error, epoch=self.epoch)
        try:
            self.channel.send(reply)
        except ChannelClosed:
            # Hold the result; the reconnect handshake re-sends it under
            # the fresh epoch (the run loop sees the disconnect next).
            self._unsent = reply


def worker_main(address: str, worker_id: Optional[str] = None, *,
                heartbeat_interval: float = 0.5,
                cell_timeout: Optional[float] = None,
                connect_timeout: float = 10.0,
                reconnect_backoff: float = 0.25,
                max_reconnects: int = 8) -> int:
    """Entry point for a socket-transport worker process (``repro worker``)."""
    transport = SocketTransport()

    def dial() -> Channel:
        return transport.connect(address, timeout=connect_timeout)

    try:
        channel = dial()
    except OSError as exc:
        raise SystemExit(f"worker: cannot reach coordinator at "
                         f"{address}: {exc}") from exc
    worker = ServiceWorker(channel, worker_id,
                           heartbeat_interval=heartbeat_interval,
                           cell_timeout=cell_timeout,
                           reconnect=dial,
                           reconnect_backoff=reconnect_backoff,
                           max_reconnects=max_reconnects)
    worker.run()
    return 0
