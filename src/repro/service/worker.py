"""The service worker: execute assigned cells, heartbeat, report back.

A :class:`ServiceWorker` connects a channel to a coordinator, announces
itself (``hello``), then loops: receive an ``assign``, run the cell,
send a ``result``. A daemon thread sends a ``heartbeat`` every
``heartbeat_interval`` seconds — including while a cell is running — so
the coordinator can tell "busy with a long simulation" from "dead".

Cell execution goes through the same
:func:`~repro.experiments.workers.run_cells` machinery as a local
sweep: with ``cell_timeout`` set, each cell runs in its own
subprocess, so a crash or a hang in one pathological configuration is
contained (and reported as ``crashed``/``timeout``, never taking the
worker down), and an interrupt drains the subprocess pool through the
shared :func:`~repro.experiments.workers.drain_pool` path. Without a
timeout the cell runs inline — fastest, with the coordinator's
lost-worker reassignment as the safety net. Retries are the
coordinator's job; a worker reports each attempt's outcome verbatim.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

from ..experiments.artifacts import result_to_dict
from ..experiments.workers import CellSpec, run_cell, run_cells
from . import protocol
from .transport import Channel, ChannelClosed, SocketTransport

__all__ = ["ServiceWorker", "worker_main"]


class ServiceWorker:
    """One worker loop bound to a connected channel."""

    def __init__(self, channel: Channel, worker_id: Optional[str] = None, *,
                 heartbeat_interval: float = 0.5,
                 cell_timeout: Optional[float] = None,
                 cell_fn: Callable = run_cell,
                 mp_context: Optional[str] = None):
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be positive, "
                             f"got {heartbeat_interval}")
        self.channel = channel
        self.worker_id = worker_id or f"pid{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        self.cell_timeout = cell_timeout
        self.cell_fn = cell_fn
        self.mp_context = mp_context
        self.cells_run = 0

    # --------------------------------------------------------------- run
    def run(self) -> int:
        """Serve until told to stop or the coordinator goes away.

        Returns the number of cells executed.
        """
        self.channel.send(protocol.hello(self.worker_id, os.getpid()))
        stop_beating = threading.Event()
        beater = threading.Thread(target=self._beat, args=(stop_beating,),
                                  name=f"heartbeat-{self.worker_id}",
                                  daemon=True)
        beater.start()
        try:
            while True:
                try:
                    message = self.channel.recv(0.25)
                except ChannelClosed:
                    break             # coordinator gone; nothing to tell
                if message is None:
                    continue
                kind = message.get("kind")
                if kind == "stop":
                    try:
                        self.channel.send(protocol.goodbye(self.worker_id))
                    except ChannelClosed:
                        pass
                    break
                if kind == "assign":
                    self._run_assignment(message)
        finally:
            stop_beating.set()
            beater.join(self.heartbeat_interval + 1.0)
            self.channel.close()
        return self.cells_run

    def _beat(self, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                self.channel.send(protocol.heartbeat(self.worker_id))
            except ChannelClosed:
                return

    # -------------------------------------------------------------- cells
    def _run_assignment(self, message) -> None:
        job, key, attempt = message["job"], message["key"], message["attempt"]
        spec = CellSpec.from_dict(message["spec"])
        kinds: List[str] = []

        def attempt_failed(_spec, _attempt, _error, kind) -> None:
            kinds.append(kind)

        outcome = run_cells(
            [spec], jobs=1, timeout=self.cell_timeout, retries=0,
            cell_fn=self.cell_fn, on_attempt_failed=attempt_failed,
            mp_context=self.mp_context)[0]
        self.cells_run += 1
        if outcome.status == "done":
            reply = protocol.result(job, key, attempt, "done",
                                    result=result_to_dict(outcome.result))
        elif outcome.violation is not None:
            reply = protocol.result(job, key, attempt, "violation",
                                    violation=outcome.violation,
                                    error=outcome.error)
        else:
            kind = kinds[-1] if kinds else "error"
            reply = protocol.result(job, key, attempt, kind,
                                    error=outcome.error)
        try:
            self.channel.send(reply)
        except ChannelClosed:
            # The coordinator will have reassigned the cell; the result
            # is deterministic, so the duplicate work is the only loss.
            pass


def worker_main(address: str, worker_id: Optional[str] = None, *,
                heartbeat_interval: float = 0.5,
                cell_timeout: Optional[float] = None,
                connect_timeout: float = 10.0) -> int:
    """Entry point for a socket-transport worker process (``repro worker``)."""
    transport = SocketTransport()
    try:
        channel = transport.connect(address, timeout=connect_timeout)
    except OSError as exc:
        raise SystemExit(f"worker: cannot reach coordinator at "
                         f"{address}: {exc}") from exc
    worker = ServiceWorker(channel, worker_id,
                           heartbeat_interval=heartbeat_interval,
                           cell_timeout=cell_timeout)
    worker.run()
    return 0
