"""Pluggable message transports for the sweep service.

A **transport** turns an address into a coordinator-side
:class:`Listener` and worker/client-side :class:`Channel` objects. The
contract is deliberately tiny — line-delimited JSON messages over a
reliable, ordered byte stream — so a transport for another fabric
(TCP across nodes today via ``host:port`` addresses; anything
stream-shaped tomorrow) only has to implement four methods:

* ``Channel.send(message)`` — enqueue one JSON-serializable dict,
  atomically with respect to other senders on the same channel.
* ``Channel.recv(timeout)`` — the next message, ``None`` on timeout,
  :class:`ChannelClosed` once the peer is gone (after any buffered
  messages have been drained), :class:`MalformedFrame` for a line that
  is not one JSON object (the channel itself stays usable).
* ``Listener.accept(timeout)`` — the next inbound :class:`Channel`, or
  ``None``.
* ``Transport.connect(address)`` — dial a listener.

Two implementations ship in-tree:

:class:`InProcTransport`
    Queue-backed channels inside one process. Used by the test suite
    and by embedded coordinators; messages still round-trip through
    JSON so anything that works in-process works over a socket.

:class:`SocketTransport`
    ``AF_UNIX`` (addresses containing a path separator) or TCP
    (``host:port`` addresses) sockets carrying newline-delimited JSON.
    This is what ``repro serve`` / ``repro worker`` use; a TCP address
    already crosses machines, which is the door left open for
    multi-node sweeps.

Like the sweep journal, a byte stream torn mid-line by a crash is
tolerated: a partial trailing line at EOF is discarded, never parsed.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from collections import deque
from typing import Dict, Optional

__all__ = ["ChannelClosed", "MalformedFrame", "Channel", "Listener",
           "Transport", "InProcTransport", "SocketTransport",
           "is_path_address"]


class ChannelClosed(ConnectionError):
    """The peer is gone: EOF on the stream or the channel was closed."""


class MalformedFrame(ValueError):
    """A received line is not one well-formed JSON object.

    The stream framing itself (newline-delimited) is intact, so only
    this frame's payload is garbage and the channel stays usable — the
    *policy* for a malformed frame (drop it, count it, quarantine the
    channel) is the receiver's call, which is why this is an exception
    out of :meth:`Channel.recv` rather than a silent skip.
    """

    def __init__(self, peer: str, text: str):
        preview = text if len(text) <= 80 else text[:77] + "..."
        super().__init__(f"{peer}: malformed frame {preview!r}")
        self.peer = peer
        self.text = text


class Channel:
    """One bidirectional, ordered JSON-message stream."""

    peer = "?"

    def send(self, message: Dict) -> None:
        raise NotImplementedError

    def send_text(self, text: str) -> None:
        """Send one raw line verbatim, bypassing JSON encoding.

        Exists so a chaos wrapper can put corrupted bytes on the wire;
        production senders always use :meth:`send`. ``text`` must not
        contain a newline (it would silently become two frames).
        """
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next message; ``None`` on timeout (``0`` polls without blocking).

        Raises :class:`ChannelClosed` once the peer is gone and every
        buffered message has been drained, and :class:`MalformedFrame`
        for a line that does not parse as one JSON object (the channel
        stays usable; only that frame is consumed).
        """
        raise NotImplementedError

    def poll(self) -> bool:
        """True if :meth:`recv` would return a message without blocking."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Listener:
    """Coordinator side of a transport: accepts inbound channels."""

    address = "?"

    def accept(self, timeout: Optional[float] = None) -> Optional[Channel]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Transport:
    """Factory for listeners and outbound channels."""

    scheme = "?"

    def listen(self, address: str) -> Listener:
        raise NotImplementedError

    def connect(self, address: str,
                timeout: Optional[float] = None) -> Channel:
        raise NotImplementedError


# ---------------------------------------------------------------- inproc
_EOF = object()


class _RawLine:
    """A verbatim line in an in-process inbox (see ``send_text``)."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text


def _decode_line(peer: str, text: str) -> Dict:
    """Parse one frame; anything but a JSON object is malformed."""
    try:
        message = json.loads(text)
    except json.JSONDecodeError:
        raise MalformedFrame(peer, text) from None
    if not isinstance(message, dict):
        raise MalformedFrame(peer, text)
    return message


class _InProcChannel(Channel):
    def __init__(self, peer: str):
        self.peer = peer
        self._inbox: "queue.Queue" = queue.Queue()
        self._partner: Optional["_InProcChannel"] = None
        self._closed = False

    def send(self, message: Dict) -> None:
        if self._closed:
            raise ChannelClosed(f"{self.peer}: channel closed")
        partner = self._partner
        if partner is None or partner._closed:
            raise ChannelClosed(f"{self.peer}: peer closed")
        # Round-trip through JSON so in-process behaviour matches the
        # socket transport exactly (no shared mutable state, and a
        # non-serializable message fails here, not in production).
        partner._inbox.put(json.loads(json.dumps(message, sort_keys=True)))

    def send_text(self, text: str) -> None:
        if self._closed:
            raise ChannelClosed(f"{self.peer}: channel closed")
        partner = self._partner
        if partner is None or partner._closed:
            raise ChannelClosed(f"{self.peer}: peer closed")
        partner._inbox.put(_RawLine(text))

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        try:
            if timeout == 0:
                item = self._inbox.get_nowait()
            else:
                item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            if self._closed:
                raise ChannelClosed(f"{self.peer}: channel closed") from None
            return None
        if item is _EOF:
            self._inbox.put(_EOF)   # keep raising for later callers
            raise ChannelClosed(f"{self.peer}: peer closed")
        if isinstance(item, _RawLine):
            return _decode_line(self.peer, item.text)
        return item

    def poll(self) -> bool:
        return not self._inbox.empty()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        partner = self._partner
        if partner is not None and not partner._closed:
            partner._inbox.put(_EOF)
        self._inbox.put(_EOF)


class _InProcListener(Listener):
    def __init__(self, address: str):
        self.address = address
        self._backlog: "queue.Queue" = queue.Queue()
        self.closed = False

    def accept(self, timeout: Optional[float] = None) -> Optional[Channel]:
        try:
            if timeout == 0:
                return self._backlog.get_nowait()
            return self._backlog.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self.closed = True


class InProcTransport(Transport):
    """Queue-backed channels within one process (tests, embedding)."""

    scheme = "inproc"

    def __init__(self):
        self._listeners: Dict[str, _InProcListener] = {}
        self._lock = threading.Lock()

    def listen(self, address: str) -> Listener:
        with self._lock:
            existing = self._listeners.get(address)
            if existing is not None and not existing.closed:
                raise OSError(f"inproc address {address!r} already bound")
            listener = _InProcListener(address)
            self._listeners[address] = listener
        return listener

    def connect(self, address: str,
                timeout: Optional[float] = None) -> Channel:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                listener = self._listeners.get(address)
            if listener is not None and not listener.closed:
                break
            if deadline is None or time.monotonic() >= deadline:
                raise ConnectionRefusedError(
                    f"no inproc listener at {address!r}")
            time.sleep(0.01)
        near = _InProcChannel(f"inproc:{address}")
        far = _InProcChannel(f"inproc:{address}#accepted")
        near._partner, far._partner = far, near
        listener._backlog.put(far)
        return near


# ---------------------------------------------------------------- socket
def is_path_address(address: str) -> bool:
    """Path-looking addresses select ``AF_UNIX``; ``host:port`` TCP."""
    if os.sep in address or address.startswith("."):
        return True
    host, sep, port = address.rpartition(":")
    return not (sep and host and port.isdigit())


def _parse_tcp(address: str):
    host, _, port = address.rpartition(":")
    return host, int(port)


class _SocketChannel(Channel):
    def __init__(self, sock: socket.socket, peer: str):
        self._sock = sock
        self.peer = peer
        self._buffer = b""
        self._lines: deque = deque()
        self._send_lock = threading.Lock()
        self._eof = False

    def send(self, message: Dict) -> None:
        self._send_bytes(
            (json.dumps(message, sort_keys=True) + "\n").encode("utf-8"))

    def send_text(self, text: str) -> None:
        self._send_bytes((text + "\n").encode("utf-8", "replace"))

    def _send_bytes(self, data: bytes) -> None:
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except OSError as exc:
            raise ChannelClosed(f"{self.peer}: {exc}") from exc

    def _fill(self, timeout: Optional[float]) -> None:
        """Pull available bytes into the line buffer (one recv call)."""
        if self._eof:
            raise ChannelClosed(f"{self.peer}: connection closed")
        try:
            self._sock.settimeout(timeout)
            chunk = self._sock.recv(65536)
        except (socket.timeout, BlockingIOError):
            return
        except OSError as exc:
            self._eof = True
            raise ChannelClosed(f"{self.peer}: {exc}") from exc
        if not chunk:
            # A partial trailing line at EOF is a write torn by the
            # peer's death — discarded, exactly like a torn journal tail.
            self._eof = True
            raise ChannelClosed(f"{self.peer}: connection closed")
        self._buffer += chunk
        if b"\n" in self._buffer:
            *complete, self._buffer = self._buffer.split(b"\n")
            self._lines.extend(complete)

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            if self._lines:
                return _decode_line(
                    self.peer,
                    self._lines.popleft().decode("utf-8", "replace"))
            if deadline is None:
                self._fill(None)
                continue
            remaining = deadline - time.monotonic()
            self._fill(max(0.0, remaining))
            if not self._lines and time.monotonic() >= deadline:
                return None

    def poll(self) -> bool:
        if self._lines:
            return True
        try:
            self._fill(0.0)
        except ChannelClosed:
            return True    # recv() will raise promptly
        return bool(self._lines)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class _SocketListener(Listener):
    def __init__(self, sock: socket.socket, address: str,
                 unlink: Optional[str] = None):
        self._sock = sock
        self.address = address
        self._unlink = unlink

    def accept(self, timeout: Optional[float] = None) -> Optional[Channel]:
        try:
            self._sock.settimeout(timeout)
            conn, _ = self._sock.accept()
        except (socket.timeout, BlockingIOError):
            return None
        except OSError as exc:
            raise ChannelClosed(f"{self.address}: {exc}") from exc
        conn.setblocking(True)
        return _SocketChannel(conn, f"{self.address}#accepted")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
        if self._unlink:
            try:
                os.unlink(self._unlink)
            except OSError:
                pass


class SocketTransport(Transport):
    """JSON lines over ``AF_UNIX`` or TCP sockets (``repro serve``)."""

    scheme = "socket"

    def listen(self, address: str) -> Listener:
        if is_path_address(address):
            directory = os.path.dirname(address)
            if directory:
                os.makedirs(directory, exist_ok=True)
            try:
                os.unlink(address)    # a stale socket from a dead server
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(address)
            sock.listen(64)
            return _SocketListener(sock, address, unlink=address)
        host, port = _parse_tcp(address)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(64)
        bound = sock.getsockname()
        return _SocketListener(sock, f"{bound[0]}:{bound[1]}")

    def connect(self, address: str,
                timeout: Optional[float] = None) -> Channel:
        """Dial; retries until ``timeout`` while the listener comes up."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if is_path_address(address):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(address)
                else:
                    sock = socket.create_connection(_parse_tcp(address),
                                                    timeout=5.0)
                    sock.settimeout(None)
                return _SocketChannel(sock, address)
            except (ConnectionRefusedError, FileNotFoundError, OSError):
                if deadline is None or time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
