"""Sweep requests: the unit of work a client submits to the service.

A :class:`SweepRequest` names a figure grid the way ``repro sweep``
does — figure, farm sizes, task subset, scale — and knows how to

* **expand** itself into the exact :class:`CellSpec` list the figure
  driver would run (:meth:`cells` captures the driver's own grid, so
  the service can never drift from the inline path), and
* **finalize** a completed journal back into the figure's artifacts
  (:meth:`finalize` replays the driver over the journal — every cell a
  cache hit — and writes ``<figure>.txt`` / ``<figure>.csv`` /
  ``MANIFEST.json`` exactly as a single-process ``repro sweep`` would).

Because both ends go through the unmodified drivers, a sweep run
through ``repro serve`` + ``repro submit`` is byte-identical to one run
inline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.artifacts import atomic_write_text, write_manifest
from ..experiments.export import (
    fig1_rows,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig5_rows,
    rows_to_csv,
)
from ..experiments.figures import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
)
from ..experiments.harness import SweepRunner
from ..experiments.runner import DEFAULT_SCALE
from ..experiments.workers import CellSpec
from ..traffic.driver import (
    DEFAULT_TRAFFIC_SIZES,
    run_traffic_figure,
)
from ..traffic.report import traffic_rows
from ..workloads import registered_tasks

__all__ = ["FigureDriver", "FIGURES", "SweepRequest"]


@dataclass(frozen=True)
class FigureDriver:
    """One figure's driver plus the CLI-facing defaults."""

    run_fn: Callable
    rows_fn: Callable
    takes_tasks: bool
    default_sizes: Tuple[int, ...]


#: Figure sweeps the service (and ``repro sweep``) knows how to run.
FIGURES: Dict[str, FigureDriver] = {
    "fig1": FigureDriver(run_fig1, fig1_rows, True, (16, 32, 64, 128)),
    "fig2": FigureDriver(run_fig2, fig2_rows, True, (64, 128)),
    "fig3": FigureDriver(run_fig3, fig3_rows, False, (16, 32, 64, 128)),
    "fig4": FigureDriver(run_fig4, fig4_rows, True, (16, 32, 64, 128)),
    "fig5": FigureDriver(run_fig5, fig5_rows, True, (32, 64, 128)),
    "traffic": FigureDriver(run_traffic_figure, traffic_rows, True,
                            DEFAULT_TRAFFIC_SIZES),
}


class _Collected(Exception):
    """Internal: carries the spec grid out of a collector run."""

    def __init__(self, specs: List[CellSpec]):
        super().__init__(f"{len(specs)} specs")
        self.specs = specs


class _SpecCollector:
    """A runner that captures the driver's cell grid instead of running it.

    Guarantees :meth:`SweepRequest.cells` is *the* grid the driver
    would execute — there is no second grid-building code path to
    drift.
    """

    def run(self, specs, after_cell=None):
        raise _Collected(list(specs))


@dataclass(frozen=True)
class SweepRequest:
    """One figure sweep, as submitted to ``repro serve``."""

    figure: str
    sizes: Optional[Tuple[int, ...]] = None
    tasks: Optional[Tuple[str, ...]] = None
    scale: float = DEFAULT_SCALE
    out_dir: str = "results"
    queue: Optional[str] = None
    extra: Dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        if self.figure not in FIGURES:
            raise ValueError(f"unknown figure {self.figure!r}; "
                             f"pick one of {tuple(sorted(FIGURES))}")
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {self.scale!r}")
        if self.tasks:
            unknown = set(self.tasks) - set(registered_tasks())
            if unknown:
                raise ValueError(
                    f"unknown tasks: {', '.join(sorted(unknown))}")
        if self.queue is not None:
            from ..sim.queues import resolve_backend
            resolve_backend(self.queue)
        if self.sizes is not None:
            object.__setattr__(self, "sizes", tuple(self.sizes))
        if self.tasks is not None:
            object.__setattr__(self, "tasks", tuple(self.tasks))

    # -------------------------------------------------------- round-trip
    def to_dict(self) -> Dict:
        out: Dict = {"figure": self.figure, "scale": self.scale,
                     "out_dir": self.out_dir}
        if self.sizes is not None:
            out["sizes"] = list(self.sizes)
        if self.tasks is not None:
            out["tasks"] = list(self.tasks)
        if self.queue is not None:
            out["queue"] = self.queue
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepRequest":
        known = {"figure", "sizes", "tasks", "scale", "out_dir", "queue"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown request fields: {', '.join(sorted(unknown))}")
        if "figure" not in data:
            raise ValueError("request needs a 'figure'")
        kwargs = dict(data)
        if kwargs.get("sizes") is not None:
            kwargs["sizes"] = tuple(kwargs["sizes"])
        if kwargs.get("tasks") is not None:
            kwargs["tasks"] = tuple(kwargs["tasks"])
        return cls(**kwargs)

    def with_out_dir(self, out_dir: str) -> "SweepRequest":
        return replace(self, out_dir=out_dir)

    # ----------------------------------------------------------- derived
    @property
    def resolved_sizes(self) -> Tuple[int, ...]:
        return (tuple(self.sizes) if self.sizes
                else FIGURES[self.figure].default_sizes)

    def meta(self) -> Dict:
        """Journal ``sweep`` metadata, compatible with ``repro resume``."""
        meta = {"figure": self.figure, "sizes": list(self.resolved_sizes),
                "scale": self.scale, "out_dir": self.out_dir}
        if self.tasks:
            meta["tasks"] = list(self.tasks)
        if self.queue is not None:
            meta["queue"] = self.queue
        return meta

    def _driver_kwargs(self) -> Dict:
        kwargs: Dict = {"sizes": self.resolved_sizes, "scale": self.scale}
        if FIGURES[self.figure].takes_tasks:
            kwargs["tasks"] = tuple(self.tasks) if self.tasks else None
        if self.queue is not None:
            kwargs["queue"] = self.queue
        return kwargs

    def cells(self) -> List[CellSpec]:
        """The exact cell grid the figure driver would execute."""
        try:
            FIGURES[self.figure].run_fn(runner=_SpecCollector(),
                                        **self._driver_kwargs())
        except _Collected as collected:
            return collected.specs
        raise RuntimeError(   # pragma: no cover - drivers always sweep
            f"{self.figure} driver never executed its cell grid")

    # --------------------------------------------------------- execution
    def run_with(self, runner) -> str:
        """Run the driver through ``runner`` and write crash-safe artifacts.

        Returns the rendered figure text. Artifacts (``<figure>.txt``,
        ``<figure>.csv``, refreshed ``MANIFEST.json``) land in
        ``out_dir`` via atomic writes.
        """
        driver = FIGURES[self.figure]
        result = driver.run_fn(runner=runner, **self._driver_kwargs())
        text = result.render()
        os.makedirs(self.out_dir, exist_ok=True)
        atomic_write_text(os.path.join(self.out_dir, f"{self.figure}.txt"),
                          text + "\n")
        atomic_write_text(os.path.join(self.out_dir, f"{self.figure}.csv"),
                          rows_to_csv(driver.rows_fn(result)))
        write_manifest(self.out_dir)
        return text

    def finalize(self, journal_path: str) -> str:
        """Rebuild the figure from a completed journal (all cache hits)."""
        return self.run_with(SweepRunner(journal_path))
