"""The coordinator's persistent job queue.

A **job** is one queued sweep request (``{"figure": "fig1", ...}`` — see
:class:`~repro.service.requests.SweepRequest`) moving through

    queued -> running -> done
                      -> failed (quarantined cells, or a bad request)

The queue is an :class:`~repro.experiments.journal.AppendLog`: every
submission and status transition is one fsync'd JSON line, so a
coordinator killed at any moment reloads the exact queue on restart —
jobs left ``running`` by the dead coordinator are simply re-activated,
and their sweep journals take care of skipping the cells that already
finished (``docs/SERVICE.md``).

Because the append mechanics are inherited, the queue also inherits
the gauntlet-verified hardening (``repro crashtest``,
``docs/DURABILITY.md``): its writes go through the durability IO seam,
the queue file's directory entry is fsync'd at creation, every record
carries a load-verified CRC32, and a failed append aborts cleanly
rather than leaving half a record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..experiments.journal import AppendLog

__all__ = ["Job", "JobQueue", "JOB_STATUSES"]

#: Legal job statuses, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """Folded state of one submitted sweep request."""

    id: str
    request: Dict
    status: str = "queued"
    error: Optional[str] = None


class JobQueue(AppendLog):
    """Append-only, crash-safe JSONL queue of sweep requests."""

    def __init__(self, path: str):
        super().__init__(path)
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []

    def _fold(self, record: Dict) -> None:
        if record.get("kind") != "job":
            return  # forward-compatible noise
        job_id = record["id"]
        job = self.jobs.get(job_id)
        if job is None:
            job = self.jobs[job_id] = Job(id=job_id,
                                          request=record.get("request") or {})
            self._order.append(job_id)
        if record.get("request") is not None:
            job.request = record["request"]
        status = record.get("status")
        if status is not None:
            if status not in JOB_STATUSES:
                raise ValueError(f"{self.path}: bad job status {status!r} "
                                 f"for {job_id!r}")
            job.status = status
        if record.get("error") is not None:
            job.error = record["error"]

    # ----------------------------------------------------------- updates
    def submit(self, request: Dict) -> Job:
        """Append a new job; ids are monotonic across reloads."""
        job_id = f"job-{len(self._order) + 1:04d}"
        self._append({"kind": "job", "id": job_id, "request": request,
                      "status": "queued"})
        return self.jobs[job_id]

    def update(self, job_id: str, status: str,
               error: Optional[str] = None) -> None:
        if job_id not in self.jobs:
            raise KeyError(f"no job {job_id!r}")
        record: Dict = {"kind": "job", "id": job_id, "status": status}
        if error is not None:
            record["error"] = error
        self._append(record)

    # ----------------------------------------------------------- queries
    def pending(self) -> List[Job]:
        """Jobs still owed work, submission order.

        ``running`` jobs sort first: they were active when a previous
        coordinator died and should resume before fresh submissions.
        """
        jobs = [self.jobs[job_id] for job_id in self._order]
        return ([job for job in jobs if job.status == "running"]
                + [job for job in jobs if job.status == "queued"])

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs.values():
            out[job.status] += 1
        return out

    def open_count(self) -> int:
        """Jobs still owed work — the coordinator's admission gauge."""
        counts = self.counts()
        return counts["queued"] + counts["running"]

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in JOB_STATUSES if counts[s]]
        return f"{self.path}: " + (", ".join(parts) or "empty")
