"""repro.service — distributed sweep service.

A **coordinator** owns a crash-safe job queue of sweep requests and a
per-job :class:`~repro.experiments.journal.SweepJournal`; **workers**
connect over a pluggable transport (in-process queues or sockets),
heartbeat, and execute one cell at a time. Workers that die mid-cell
have their cell reassigned; a killed coordinator resumes from its
journals bit-identically. ``docs/SERVICE.md`` has the full contract.

Entry points: ``repro serve`` / ``repro submit`` / ``repro status`` /
``repro worker`` in the CLI, or :func:`serve`, :func:`submit_request`,
:func:`fetch_status` from code.
"""

from .coordinator import COUNTERS, Coordinator, WorkerState
from .jobs import JOB_STATUSES, Job, JobQueue
from .requests import FIGURES, FigureDriver, SweepRequest
from .server import (
    default_socket,
    fetch_status,
    render_status,
    serve,
    spawn_local_workers,
    submit_request,
)
from .transport import (
    Channel,
    ChannelClosed,
    InProcTransport,
    Listener,
    SocketTransport,
    Transport,
)
from .worker import ServiceWorker, worker_main

__all__ = [
    "COUNTERS",
    "Coordinator",
    "WorkerState",
    "JOB_STATUSES",
    "Job",
    "JobQueue",
    "FIGURES",
    "FigureDriver",
    "SweepRequest",
    "default_socket",
    "fetch_status",
    "render_status",
    "serve",
    "spawn_local_workers",
    "submit_request",
    "Channel",
    "ChannelClosed",
    "InProcTransport",
    "Listener",
    "SocketTransport",
    "Transport",
    "ServiceWorker",
    "worker_main",
]
