"""repro.service — distributed sweep service.

A **coordinator** owns a crash-safe job queue of sweep requests and a
per-job :class:`~repro.experiments.journal.SweepJournal`; **workers**
connect over a pluggable transport (in-process queues or sockets),
heartbeat, and execute one cell at a time. Workers that die mid-cell
have their cell reassigned; a killed coordinator resumes from its
journals bit-identically. ``docs/SERVICE.md`` has the full contract.

The service is chaos-hardened: registrations are epoch-fenced, results
apply exactly once, malformed frames drop only their channel, and
workers reconnect with backoff. :mod:`.chaos` injects seeded transport
faults to prove it, and :mod:`.gauntlet` (``repro chaos``) asserts the
artifacts stay byte-identical under fire — ``docs/CHAOS.md``.

Entry points: ``repro serve`` / ``repro submit`` / ``repro status`` /
``repro worker`` / ``repro chaos`` in the CLI, or :func:`serve`,
:func:`submit_request`, :func:`fetch_status`, :func:`run_gauntlet`
from code.
"""

from .chaos import (
    CHAOS_KINDS,
    ChaosChannel,
    ChaosListener,
    ChaosPlan,
    ChaosSpec,
    ChaosTransport,
)
from .coordinator import COUNTERS, Coordinator, WorkerState
from .gauntlet import default_plan, run_gauntlet
from .jobs import JOB_STATUSES, Job, JobQueue
from .requests import FIGURES, FigureDriver, SweepRequest
from .server import (
    default_socket,
    fetch_status,
    render_status,
    serve,
    spawn_local_workers,
    submit_request,
)
from .transport import (
    Channel,
    ChannelClosed,
    InProcTransport,
    Listener,
    MalformedFrame,
    SocketTransport,
    Transport,
)
from .worker import ServiceWorker, worker_main

__all__ = [
    "CHAOS_KINDS",
    "ChaosChannel",
    "ChaosListener",
    "ChaosPlan",
    "ChaosSpec",
    "ChaosTransport",
    "COUNTERS",
    "Coordinator",
    "WorkerState",
    "default_plan",
    "run_gauntlet",
    "JOB_STATUSES",
    "Job",
    "JobQueue",
    "FIGURES",
    "FigureDriver",
    "SweepRequest",
    "default_socket",
    "fetch_status",
    "render_status",
    "serve",
    "spawn_local_workers",
    "submit_request",
    "Channel",
    "ChannelClosed",
    "InProcTransport",
    "Listener",
    "MalformedFrame",
    "SocketTransport",
    "Transport",
    "ServiceWorker",
    "worker_main",
]
