"""The service wire vocabulary: JSON message builders and constants.

Every message exchanged between a coordinator and its peers is one JSON
object with a ``kind`` field, sent as a single line over a
:class:`~repro.service.transport.Channel`. The vocabulary is small and
versioned:

Worker -> coordinator
    ``hello``       first message on a worker channel; declares the role
    ``heartbeat``   liveness beacon, sent every ``heartbeat_interval``
    ``result``      terminal report for one assigned cell
    ``goodbye``     graceful disconnect

Coordinator -> worker
    ``assign``      one cell to execute (spec + attempt number)
    ``stop``        shut the worker down

Client -> coordinator (one-shot channels)
    ``submit``      enqueue a sweep request; replied with ``submitted``
    ``status``      replied with a ``status`` payload

Coordinator -> client
    ``submitted``   carries the new job id
    ``status``      queue depth, jobs, per-worker liveness, counters
    ``error``       the request could not be honoured

``result.status`` reuses the worker-pool failure taxonomy of
:mod:`repro.experiments.workers`: ``done``, ``error``, ``timeout``,
``crashed`` or ``violation`` — the coordinator applies the same
retry/quarantine rules a local pool would (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "PROTOCOL_VERSION", "RESULT_STATUSES",
    "hello", "heartbeat", "result", "goodbye",
    "assign", "stop",
    "submit", "submitted", "status_request", "status_reply", "error_reply",
]

PROTOCOL_VERSION = 1

#: Legal ``result.status`` values, mirroring the pool's failure kinds.
RESULT_STATUSES = ("done", "error", "timeout", "crashed", "violation")


# ------------------------------------------------------------- worker ->
def hello(worker: str, pid: int) -> Dict:
    return {"kind": "hello", "version": PROTOCOL_VERSION,
            "worker": worker, "pid": pid}


def heartbeat(worker: str) -> Dict:
    return {"kind": "heartbeat", "worker": worker}


def result(job: str, key: str, attempt: int, status: str, *,
           result: Optional[Dict] = None,
           error: Optional[str] = None,
           violation: Optional[Dict] = None) -> Dict:
    if status not in RESULT_STATUSES:
        raise ValueError(f"bad result status {status!r}; "
                         f"pick one of {RESULT_STATUSES}")
    message: Dict = {"kind": "result", "job": job, "key": key,
                     "attempt": attempt, "status": status}
    if result is not None:
        message["result"] = result
    if error is not None:
        message["error"] = error
    if violation is not None:
        message["violation"] = violation
    return message


def goodbye(worker: str) -> Dict:
    return {"kind": "goodbye", "worker": worker}


# -------------------------------------------------------- coordinator ->
def assign(job: str, key: str, spec: Dict, attempt: int) -> Dict:
    return {"kind": "assign", "job": job, "key": key, "spec": spec,
            "attempt": attempt}


def stop() -> Dict:
    return {"kind": "stop"}


# ------------------------------------------------------------- client ->
def submit(request: Dict) -> Dict:
    return {"kind": "submit", "request": request}


def submitted(job: str) -> Dict:
    return {"kind": "submitted", "job": job}


def status_request() -> Dict:
    return {"kind": "status"}


def status_reply(payload: Dict) -> Dict:
    message = {"kind": "status"}
    message.update(payload)
    return message


def error_reply(message: str) -> Dict:
    return {"kind": "error", "error": message}
