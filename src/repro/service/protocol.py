"""The service wire vocabulary: JSON message builders and constants.

Every message exchanged between a coordinator and its peers is one JSON
object with a ``kind`` field, sent as a single line over a
:class:`~repro.service.transport.Channel`. The vocabulary is small and
versioned:

Worker -> coordinator
    ``hello``       first message on a worker channel; declares the role
    ``heartbeat``   liveness beacon, sent every ``heartbeat_interval``
    ``result``      terminal report for one assigned cell
    ``goodbye``     graceful disconnect

Coordinator -> worker
    ``welcome``     registration ack; carries the worker's **epoch**
    ``assign``      one cell to execute (spec + attempt number)
    ``stop``        shut the worker down

Client -> coordinator (one-shot channels)
    ``submit``      enqueue a sweep request; replied with ``submitted``
    ``status``      replied with a ``status`` payload

Coordinator -> client
    ``submitted``   carries the new job id
    ``status``      queue depth, jobs, per-worker liveness, counters
    ``rejected``    admission control said no (queue full, draining)
    ``error``       the request could not be honoured

The **epoch** is a per-worker-id registration counter: every time a
worker (re)registers, the coordinator bumps it and echoes it in
``welcome``; the worker then stamps it on every ``heartbeat``,
``result`` and ``goodbye``. A frame carrying a stale epoch is provably
from a superseded registration and is fenced (dropped, counted,
journaled) instead of applied — see ``docs/CHAOS.md``. The epoch field
is optional on the wire so version-1 peers interoperate.

``result.status`` reuses the worker-pool failure taxonomy of
:mod:`repro.experiments.workers`: ``done``, ``error``, ``timeout``,
``crashed`` or ``violation`` — the coordinator applies the same
retry/quarantine rules a local pool would (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "PROTOCOL_VERSION", "RESULT_STATUSES",
    "hello", "heartbeat", "result", "goodbye",
    "welcome", "assign", "stop",
    "submit", "submitted", "status_request", "status_reply", "error_reply",
    "rejected",
]

PROTOCOL_VERSION = 1

#: Legal ``result.status`` values, mirroring the pool's failure kinds.
RESULT_STATUSES = ("done", "error", "timeout", "crashed", "violation")


# ------------------------------------------------------------- worker ->
def hello(worker: str, pid: int) -> Dict:
    return {"kind": "hello", "version": PROTOCOL_VERSION,
            "worker": worker, "pid": pid}


def heartbeat(worker: str, epoch: Optional[int] = None) -> Dict:
    message = {"kind": "heartbeat", "worker": worker}
    if epoch is not None:
        message["epoch"] = epoch
    return message


def result(job: str, key: str, attempt: int, status: str, *,
           result: Optional[Dict] = None,
           error: Optional[str] = None,
           violation: Optional[Dict] = None,
           epoch: Optional[int] = None) -> Dict:
    if status not in RESULT_STATUSES:
        raise ValueError(f"bad result status {status!r}; "
                         f"pick one of {RESULT_STATUSES}")
    message: Dict = {"kind": "result", "job": job, "key": key,
                     "attempt": attempt, "status": status}
    if result is not None:
        message["result"] = result
    if error is not None:
        message["error"] = error
    if violation is not None:
        message["violation"] = violation
    if epoch is not None:
        message["epoch"] = epoch
    return message


def goodbye(worker: str, epoch: Optional[int] = None) -> Dict:
    message = {"kind": "goodbye", "worker": worker}
    if epoch is not None:
        message["epoch"] = epoch
    return message


# -------------------------------------------------------- coordinator ->
def welcome(worker: str, epoch: int) -> Dict:
    return {"kind": "welcome", "version": PROTOCOL_VERSION,
            "worker": worker, "epoch": epoch}


def assign(job: str, key: str, spec: Dict, attempt: int) -> Dict:
    return {"kind": "assign", "job": job, "key": key, "spec": spec,
            "attempt": attempt}


def stop() -> Dict:
    return {"kind": "stop"}


# ------------------------------------------------------------- client ->
def submit(request: Dict) -> Dict:
    return {"kind": "submit", "request": request}


def submitted(job: str) -> Dict:
    return {"kind": "submitted", "job": job}


def status_request() -> Dict:
    return {"kind": "status"}


def status_reply(payload: Dict) -> Dict:
    message = {"kind": "status"}
    message.update(payload)
    return message


def error_reply(message: str) -> Dict:
    return {"kind": "error", "error": message}


def rejected(reason: str, **fields) -> Dict:
    """Admission-control refusal (``queue-full``, ``shutting-down``)."""
    message = {"kind": "rejected", "reason": reason}
    message.update(fields)
    return message
