"""The chaos gauntlet: ``repro chaos`` — the service's ``repro audit``.

Runs one sweep through a live coordinator plus N real worker processes
while a seeded :class:`~repro.service.chaos.ChaosPlan` mangles the
coordinator's side of every connection — drops, duplicates, delays,
one-way partitions, abrupt disconnects — and (optionally) one seeded
worker SIGKILL mid-job. Then it asserts the two properties the
hardening exists to guarantee:

* **Byte identity** — the artifacts the chaos-ridden service run
  produces are byte-for-byte identical to an inline ``repro sweep`` of
  the same request.
* **Exactly-once application** — the job journal contains exactly one
  ``done`` record per cell; duplicated or salvaged late results show
  up only as ``duplicate_dropped`` / ``epoch_fence`` service events,
  never as a second application.

Determinism: the same ``--seed`` produces the same :class:`ChaosPlan`,
the same per-channel RNG streams, and the same kill victim, so a
failing gauntlet run is replayable. (Wall-clock interleaving still
varies — the *schedule* is deterministic per channel, the thread timing
is not — which is exactly the point: the guarantees must hold for every
interleaving.)
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from typing import Callable, Dict, Optional

from ..experiments.harness import SweepRunner
from ..experiments.journal import SweepJournal
from .chaos import ChaosPlan, ChaosSpec, ChaosTransport
from .coordinator import Coordinator
from .requests import SweepRequest
from .server import spawn_local_workers
from .transport import SocketTransport

__all__ = ["default_plan", "default_request", "run_gauntlet",
           "render_report"]

#: Cells must finish despite chaos within this budget.
_DEADLINE = 600.0


def default_plan(seed: int = 0) -> ChaosPlan:
    """The stock drop+duplicate+delay+partition schedule.

    Probabilities are low enough that retries/reconnects converge, high
    enough that a quick run still takes real hits; ``accept*`` targets
    every coordinator-side channel (workers and one-shot clients).
    """
    return ChaosPlan.of(
        ChaosSpec(kind="drop", target="accept*", direction="both",
                  probability=0.04, after=2),
        ChaosSpec(kind="duplicate", target="accept*", direction="recv",
                  probability=0.08),
        ChaosSpec(kind="delay", target="accept*", direction="recv",
                  probability=0.05, magnitude=2),
        ChaosSpec(kind="partition", target="accept#1", direction="recv",
                  probability=0.02, magnitude=6, limit=1, after=4),
        seed=seed)


def default_request(quick: bool = False) -> Dict:
    if quick:
        return {"figure": "fig1", "sizes": [2], "tasks": ["select"],
                "scale": 1 / 64}
    return {"figure": "fig1", "sizes": [2, 4], "tasks": ["select", "sort"],
            "scale": 1 / 64}


def _done_record_counts(journal_path: str) -> Dict[str, int]:
    """Raw count of ``done`` cell records per key — the exactly-once
    evidence, read from the journal *lines* (the folded state cannot
    see a double application)."""
    counts: Dict[str, int] = {}
    with open(journal_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue    # torn tail
            if (record.get("kind") == "cell"
                    and record.get("status") == "done"):
                key = record.get("key", "?")
                counts[key] = counts.get(key, 0) + 1
    return counts


def _compare_artifacts(service_dir: str, inline_dir: str) -> Dict:
    names = sorted(name for name in os.listdir(inline_dir)
                   if os.path.isfile(os.path.join(inline_dir, name)))
    mismatched = []
    for name in names:
        service_path = os.path.join(service_dir, name)
        if not os.path.exists(service_path):
            mismatched.append(name)
            continue
        with open(service_path, "rb") as service_file:
            with open(os.path.join(inline_dir, name), "rb") as inline_file:
                if service_file.read() != inline_file.read():
                    mismatched.append(name)
    return {"files": names, "mismatched": mismatched,
            "identical": bool(names) and not mismatched}


def run_gauntlet(state_dir: str, *,
                 request: Optional[Dict] = None,
                 plan: Optional[ChaosPlan] = None,
                 seed: int = 0,
                 workers: int = 2,
                 quick: bool = False,
                 retries: int = 8,
                 kill_worker: bool = True,
                 telemetry=None,
                 log: Optional[Callable[[str], None]] = None) -> Dict:
    """Run one chaos-ridden service sweep and verify the guarantees.

    Returns a report dict; ``report["ok"]`` is the verdict. ``seed``
    feeds both the chaos plan (when none is given) and the kill
    schedule. The journals stay under ``state_dir`` for post-mortems.
    """
    def say(message: str) -> None:
        if log is not None:
            log(message)

    if request is None:
        request = default_request(quick)
    if plan is None:
        plan = default_plan(seed)
    rng = random.Random(f"gauntlet:{seed}")
    os.makedirs(state_dir, exist_ok=True)
    address = os.path.join(state_dir, "chaos.sock")
    out_dir = os.path.join(state_dir, "out")

    chaos = ChaosTransport(SocketTransport(), plan, telemetry=telemetry)
    listener = chaos.listen(address)
    coordinator = Coordinator(
        os.path.join(state_dir, "svc"), listener, out_dir=out_dir,
        retries=retries, backoff=0.02,
        heartbeat_timeout=3.0, assign_timeout=10.0,
        telemetry=telemetry, log=log)
    procs = spawn_local_workers(address, workers, heartbeat_interval=0.1)
    victim = (rng.randrange(workers) if kill_worker and workers > 1
              else None)
    say(f"chaos gauntlet: seed {seed}, {len(plan)} rule(s), "
        f"{workers} worker(s)"
        + (f", will SIGKILL worker {victim + 1} after first result"
           if victim is not None else ""))
    job = coordinator.submit(request)
    deadline = time.monotonic() + _DEADLINE
    try:
        while not (coordinator.queue.counts()["done"]
                   + coordinator.queue.counts()["failed"]):
            if not coordinator.step():
                time.sleep(0.002)
            if (victim is not None
                    and coordinator.counters["results"] >= 1):
                proc = procs[victim]
                if proc.pid is not None and proc.is_alive():
                    say(f"SIGKILL worker {victim + 1} (pid {proc.pid})")
                    os.kill(proc.pid, signal.SIGKILL)
                victim = None
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"gauntlet did not converge within {_DEADLINE:g}s "
                    f"(journal: {coordinator.journal_path_for(job.id)})")
    finally:
        coordinator.close()
        for proc in procs:
            proc.join(2.0)
            if proc.is_alive():
                proc.kill()

    journal_path = coordinator.journal_path_for(job.id)
    journal = SweepJournal.load(journal_path)
    done_counts = _done_record_counts(journal_path)
    duplicates_applied = {key: count for key, count in done_counts.items()
                         if count > 1}

    say("chaos run finished; regenerating the inline reference sweep")
    inline_dir = os.path.join(state_dir, "inline-out")
    inline = SweepRequest.from_dict(dict(request, out_dir=inline_dir))
    inline.run_with(SweepRunner(os.path.join(state_dir,
                                             "inline.journal.jsonl")))
    comparison = _compare_artifacts(out_dir, inline_dir)

    total_cells = len(inline.cells())
    report = {
        "job": job.id,
        "status": coordinator.queue.jobs[job.id].status,
        "seed": seed,
        "plan": plan.to_dict(),
        "cells": total_cells,
        "done_records": done_counts,
        "duplicates_applied": duplicates_applied,
        "chaos_fired": dict(chaos.stats),
        "counters": dict(coordinator.counters),
        "events": journal.service_event_counts(),
        "artifacts": comparison,
        "journal": journal_path,
    }
    report["ok"] = (report["status"] == "done"
                    and not duplicates_applied
                    and len(done_counts) == total_cells
                    and all(count == 1 for count in done_counts.values())
                    and comparison["identical"])
    return report


def render_report(report: Dict) -> str:
    """Human-readable gauntlet verdict for the CLI."""
    lines = [f"chaos gauntlet (seed {report['seed']}): "
             + ("OK" if report["ok"] else "FAILED")]
    lines.append(f"  job {report['job']}: {report['status']}, "
                 f"{report['cells']} cell(s), each applied "
                 + ("exactly once" if not report["duplicates_applied"]
                    else f"— DUPLICATES: {report['duplicates_applied']}"))
    fired = report.get("chaos_fired") or {}
    lines.append("  chaos fired: " + (", ".join(
        f"{kind}={count}" for kind, count in sorted(fired.items()))
        or "nothing"))
    events = report.get("events") or {}
    interesting = ", ".join(f"{name}={count}" for name, count
                            in sorted(events.items()) if count)
    if interesting:
        lines.append(f"  service events: {interesting}")
    artifacts = report["artifacts"]
    if artifacts["identical"]:
        lines.append(f"  artifacts byte-identical to inline sweep "
                     f"({len(artifacts['files'])} file(s))")
    else:
        lines.append(f"  ARTIFACT MISMATCH: {artifacts['mismatched']}")
    lines.append(f"  journal: {report['journal']}")
    return "\n".join(lines)
