"""``repro serve`` / ``submit`` / ``status`` — the service front doors.

:func:`serve` binds a socket listener, spawns N local worker processes
that dial back in, and runs the coordinator loop until stopped by
SIGINT/SIGTERM (graceful: workers get ``stop``, the queue and journals
are already on disk) or until ``exit_after_jobs`` jobs have reached a
terminal state (the CI hook). Workers killed out from under the
coordinator are *not* respawned — their cells are reassigned to the
survivors, which is the failure mode the service exists to absorb;
attach replacements any time with ``repro worker``.

:func:`submit_request` and :func:`fetch_status` are the one-shot
clients: connect, send one message, read one reply.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
from typing import Callable, Dict, List, Optional

from . import protocol
from .coordinator import Coordinator
from .transport import ChannelClosed, SocketTransport
from .worker import worker_main

__all__ = ["serve", "spawn_local_workers", "submit_request",
           "fetch_status", "render_status", "default_socket"]

#: Where the socket and service state live unless overridden.
DEFAULT_STATE_DIR = os.path.join("results", "service")


def default_socket(state_dir: str = DEFAULT_STATE_DIR) -> str:
    return os.path.join(state_dir, "coordinator.sock")


def _local_worker_entry(address: str, worker_id: str,
                        heartbeat_interval: float,
                        cell_timeout: Optional[float]) -> None:
    # Local workers die with the coordinator's stop message or their
    # own signal; SIGTERM default handling (exit) is what we want.
    worker_main(address, worker_id,
                heartbeat_interval=heartbeat_interval,
                cell_timeout=cell_timeout)


def spawn_local_workers(address: str, count: int, *,
                        heartbeat_interval: float = 0.5,
                        cell_timeout: Optional[float] = None,
                        mp_context: Optional[str] = None) -> List:
    """Start ``count`` worker processes dialing ``address``."""
    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = "fork" if "fork" in methods else "spawn"
    ctx = multiprocessing.get_context(mp_context)
    procs = []
    for index in range(count):
        proc = ctx.Process(
            target=_local_worker_entry,
            args=(address, f"w{index + 1}", heartbeat_interval,
                  cell_timeout),
            name=f"repro-service-w{index + 1}", daemon=True)
        proc.start()
        procs.append(proc)
    return procs


class _StopSignals:
    """Route SIGINT/SIGTERM to ``coordinator.stop()`` for the block."""

    def __init__(self, coordinator: Coordinator):
        self._coordinator = coordinator
        self._previous: Dict[int, object] = {}

    def __enter__(self):
        if threading.current_thread() is threading.main_thread():
            def _stop(signum, frame):
                self._coordinator.stop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(signum, _stop)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc):
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        return False


def serve(socket_path: Optional[str] = None, *,
          state_dir: str = DEFAULT_STATE_DIR,
          out_dir: str = "results",
          workers: int = 2,
          retries: int = 1,
          backoff: float = 0.05,
          heartbeat_interval: float = 0.5,
          heartbeat_timeout: Optional[float] = None,
          assign_timeout: Optional[float] = None,
          max_pending: Optional[int] = None,
          cell_timeout: Optional[float] = None,
          exit_after_jobs: Optional[int] = None,
          exit_linger: float = 2.0,
          telemetry=None,
          log: Optional[Callable[[str], None]] = None,
          poll_interval: float = 0.02) -> int:
    """Run a coordinator (plus ``workers`` local workers) until stopped."""
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if log is None:
        def log(message: str) -> None:
            print(message, flush=True)
    address = socket_path or default_socket(state_dir)
    os.makedirs(state_dir, exist_ok=True)
    listener = SocketTransport().listen(address)
    coordinator = Coordinator(state_dir, listener, out_dir=out_dir,
                              retries=retries, backoff=backoff,
                              heartbeat_timeout=(heartbeat_timeout
                                                 or 6 * heartbeat_interval),
                              assign_timeout=assign_timeout,
                              max_pending=max_pending,
                              telemetry=telemetry, log=log)
    procs = spawn_local_workers(address, workers,
                                heartbeat_interval=heartbeat_interval,
                                cell_timeout=cell_timeout)
    pending = coordinator.queue.counts()
    log(f"serving at {listener.address} — {workers} local worker(s), "
        f"state in {state_dir}/"
        + (f"; resuming {pending['running'] + pending['queued']} job(s)"
           if pending["running"] + pending["queued"] else ""))
    exit_code = 0
    try:
        with _StopSignals(coordinator):
            linger_until = None
            while not coordinator.stopped:
                progressed = coordinator.step()
                if exit_after_jobs is not None and linger_until is None:
                    terminal = (coordinator.counters["jobs_completed"]
                                + coordinator.counters["jobs_failed"])
                    if terminal >= exit_after_jobs:
                        log(f"processed {terminal} job(s); exiting "
                            f"(--exit-after-jobs {exit_after_jobs})")
                        # Keep answering status queries briefly so a
                        # `submit --wait` client sees the final state;
                        # drain so a racing submit gets a deterministic
                        # `rejected: shutting-down` instead of a hang.
                        coordinator.begin_drain()
                        linger_until = time.monotonic() + exit_linger
                if (linger_until is not None
                        and time.monotonic() >= linger_until):
                    break
                if not progressed:
                    time.sleep(poll_interval)
    except KeyboardInterrupt:   # pragma: no cover - signal path races
        pass
    finally:
        coordinator.close()
        deadline = time.monotonic() + 2.0
        for proc in procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(0.5)
        counts = coordinator.queue.counts()
        if counts["failed"]:
            exit_code = 1
        log(f"stopped: {coordinator.queue.summary()}")
    return exit_code


# ------------------------------------------------------------------ clients
def _one_shot(address: str, message: Dict, timeout: float) -> Dict:
    channel = SocketTransport().connect(address, timeout=timeout)
    try:
        channel.send(message)
        reply = channel.recv(timeout)
    finally:
        channel.close()
    if reply is None:
        raise TimeoutError(f"no reply from coordinator at {address} "
                           f"within {timeout:g}s")
    if reply.get("kind") == "error":
        raise ValueError(reply.get("error") or "coordinator refused")
    if reply.get("kind") == "rejected":
        reason = reply.get("reason") or "rejected"
        detail = ", ".join(f"{key}={value}" for key, value in reply.items()
                           if key not in ("kind", "reason"))
        raise ValueError(f"coordinator rejected request: {reason}"
                         + (f" ({detail})" if detail else ""))
    return reply


def submit_request(address: str, request: Dict, *,
                   wait: bool = False,
                   poll: float = 0.5,
                   timeout: float = 10.0,
                   wait_timeout: Optional[float] = None,
                   log: Optional[Callable[[str], None]] = None) -> Dict:
    """Submit one sweep request; optionally poll until it is terminal.

    Returns ``{"job": id, "status": <last known status>, ...}``.
    """
    reply = _one_shot(address, protocol.submit(request), timeout)
    job_id = reply["job"]
    if log is not None:
        log(f"submitted {job_id}")
    if not wait:
        return {"job": job_id, "status": "queued"}
    deadline = (None if wait_timeout is None
                else time.monotonic() + wait_timeout)
    while True:
        status = fetch_status(address, timeout=timeout)
        entry = next((job for job in status.get("jobs", [])
                      if job["id"] == job_id), None)
        if entry is not None and entry["status"] in ("done", "failed"):
            return {"job": job_id, "status": entry["status"],
                    "error": entry.get("error"), "snapshot": status}
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"{job_id} not terminal after {wait_timeout:g}s "
                f"(last: {entry['status'] if entry else 'unknown'})")
        time.sleep(poll)


def fetch_status(address: str, timeout: float = 10.0) -> Dict:
    return _one_shot(address, protocol.status_request(), timeout)


def render_status(payload: Dict) -> str:
    """Human-readable ``repro status`` output."""
    lines = [f"coordinator at {payload.get('address', '?')}"]
    queue = payload.get("queue", {})
    lines.append("queue: " + (", ".join(
        f"{queue[s]} {s}" for s in ("queued", "running", "done", "failed")
        if queue.get(s)) or "empty"))
    jobs = payload.get("jobs", [])
    if jobs:
        lines.append("jobs:")
        for job in jobs:
            line = (f"  {job['id']}  {job.get('figure') or '?':<5} "
                    f"{job['status']:<8}")
            if "total" in job:
                line += (f" cells {job['done']}/{job['total']}"
                         f" ({job['inflight']} in flight, "
                         f"{job['pending']} pending"
                         + (f", {job['quarantined']} quarantined"
                            if job.get("quarantined") else "") + ")")
            if job.get("error"):
                line += f"  [{job['error']}]"
            lines.append(line)
    workers = payload.get("workers", [])
    if workers:
        lines.append("workers:")
        for worker in workers:
            state = ("LOST: " + (worker.get("lost_reason") or "?")
                     if worker.get("lost")
                     else f"heartbeat {worker['heartbeat_age']:.1f}s ago")
            line = (f"  {worker['id']:<6} pid={worker.get('pid') or '?':<7} "
                    f"done={worker['completed']:<4} {state}")
            if worker.get("inflight"):
                line += f"  running {worker['inflight']}"
            lines.append(line)
    counters = payload.get("counters", {})
    shown = ", ".join(f"{name}={value}"
                      for name, value in counters.items() if value)
    lines.append(f"counters: {shown or 'all zero'}")
    return "\n".join(lines)


def _require_channel_closed_export():  # pragma: no cover - import guard
    return ChannelClosed


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit(serve())
