"""Functional co-simulation: real distributed algorithms on the models."""

from .active import FunctionalActiveDisks
from .engine import FunctionalCluster, RunStats

__all__ = ["FunctionalCluster", "FunctionalActiveDisks", "RunStats"]
