"""Functional co-simulation: real algorithms on simulated hardware.

The experiment harness simulates *costs* of the eight tasks from
analytic volumes. This package closes the remaining gap: it executes the
actual distributed algorithms — real numpy records partitioned across
simulated nodes, really exchanged through the simulated network, really
filtered/aggregated/sorted/joined — while every byte and cycle is
charged to simulated resources. The result is both a verifiable output
(tests compare it against the centralized reference implementations)
and a timing estimate produced by the same substrate models the paper's
experiments use.

Scales are necessarily small (records live in host memory), which is
exactly the regime where functional validation matters: it proves the
distributed decompositions the cost models assume are the ones the
algorithms actually perform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..host import Cpu
from ..net import EthernetParams, FatTree, Messaging, Network
from ..sim import Simulator

__all__ = ["RunStats", "FunctionalCluster"]

#: CPU cost charged per byte examined, at the reference clock (a single
#: constant is enough here — functional mode validates dataflow, not the
#: per-task cost calibration).
COMPUTE_NS_PER_BYTE = 60.0


@dataclass
class RunStats:
    """Timing and traffic of one functional run."""

    elapsed: float
    bytes_exchanged: int
    messages: int


def _record_bytes(records: np.ndarray) -> int:
    return int(records.size and records.nbytes)


class FunctionalCluster:
    """A small cluster that executes real distributed algorithms.

    Each node holds a partition of the input records and a simulated
    CPU; record exchanges travel through the fat-tree network model.
    One instance runs one algorithm (build a fresh one per run, like
    the machines).
    """

    def __init__(self, workers: int = 4, cpu_mhz: float = 300.0,
                 params: Optional[EthernetParams] = None):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.sim = Simulator()
        self.workers = workers
        self.tree = FatTree(self.sim, workers, params)
        self.network = Network(self.tree)
        self.messaging = Messaging(self.network, workers)
        self.cpus = [Cpu(self.sim, cpu_mhz, name=f"fcpu{i}")
                     for i in range(workers)]

    # -- helpers ---------------------------------------------------------
    def partition(self, records: np.ndarray) -> List[np.ndarray]:
        """Deal records round-robin across workers (arrival order)."""
        return [records[w::self.workers] for w in range(self.workers)]

    def _compute(self, worker: int, nbytes: int):
        yield from self.cpus[worker].compute(
            COMPUTE_NS_PER_BYTE * 1e-9 * max(0, nbytes))

    def _stats(self) -> RunStats:
        return RunStats(
            elapsed=self.sim.now,
            bytes_exchanged=int(self.network.bytes.value),
            messages=int(self.network.messages.value),
        )

    def _run(self, worker_fn) -> None:
        for w in range(self.workers):
            self.sim.process(worker_fn(w), name=f"fworker{w}")
        self.sim.run()

    # -- algorithms --------------------------------------------------------
    def select(self, records: np.ndarray,
               predicate: Callable[[np.ndarray], np.ndarray]
               ) -> Tuple[np.ndarray, RunStats]:
        """Distributed filter; worker 0 collects the matches."""
        parts = self.partition(records)
        collected: List[np.ndarray] = []

        def worker(w: int):
            part = parts[w]
            yield from self._compute(w, _record_bytes(part))
            matches = part[predicate(part)] if len(part) else part
            if w == 0:
                collected.append(matches)
                for _ in range(self.workers - 1):
                    message = yield from self.messaging.recv(0, "sel")
                    collected.append(message.payload)
            else:
                yield from self.messaging.send(
                    w, 0, "sel", _record_bytes(matches), payload=matches)

        self._run(worker)
        output = (np.rec.array(np.concatenate(collected))
                  if any(len(c) for c in collected)
                  else records[:0])
        return output, self._stats()

    def groupby_sum(self, records: np.ndarray
                    ) -> Tuple[Dict[int, int], RunStats]:
        """Two-level aggregation: local tables merged at worker 0."""
        parts = self.partition(records)
        merged: Dict[int, int] = {}

        def local_groups(part) -> Dict[int, int]:
            if not len(part):
                return {}
            keys, inverse = np.unique(part.key, return_inverse=True)
            sums = np.zeros(len(keys), dtype=np.int64)
            np.add.at(sums, inverse, part.value)
            return {int(k): int(s) for k, s in zip(keys, sums)}

        def worker(w: int):
            part = parts[w]
            yield from self._compute(w, _record_bytes(part))
            groups = local_groups(part)
            if w == 0:
                for key, value in groups.items():
                    merged[key] = merged.get(key, 0) + value
                for _ in range(self.workers - 1):
                    message = yield from self.messaging.recv(0, "gb")
                    for key, value in message.payload.items():
                        merged[key] = merged.get(key, 0) + value
            else:
                nbytes = 16 * len(groups)  # key + accumulator per group
                yield from self.messaging.send(
                    w, 0, "gb", nbytes, payload=groups)

        self._run(worker)
        return merged, self._stats()

    def sort(self, records: np.ndarray, key_space: int = 2 ** 40
             ) -> Tuple[List[np.ndarray], RunStats]:
        """Range-partitioned distributed sort (the paper's P1+P2 shape).

        Every worker classifies its records by key range, ships each
        range to its owner, and the owner sorts what arrives. Returns
        per-worker sorted outputs whose concatenation is globally
        sorted.
        """
        parts = self.partition(records)
        received: List[List[np.ndarray]] = [[] for _ in range(self.workers)]
        outputs: List[np.ndarray] = [records[:0]] * self.workers

        def owner_of(keys: np.ndarray) -> np.ndarray:
            return np.minimum(
                (keys * self.workers // key_space).astype(np.int64),
                self.workers - 1)

        def worker(w: int):
            part = parts[w]
            yield from self._compute(w, _record_bytes(part))
            owners = owner_of(part.key) if len(part) else np.array([])
            for dst in range(self.workers):
                outgoing = part[owners == dst] if len(part) else part
                if dst == w:
                    received[w].append(outgoing)
                else:
                    yield from self.messaging.send(
                        w, dst, "srt", _record_bytes(outgoing),
                        payload=outgoing)
            for _ in range(self.workers - 1):
                message = yield from self.messaging.recv(w, "srt")
                received[w].append(message.payload)
            mine = [chunk for chunk in received[w] if len(chunk)]
            merged = (np.rec.array(np.concatenate(mine)) if mine
                      else part[:0])
            yield from self._compute(w, _record_bytes(merged))
            if len(merged):
                merged = merged[np.argsort(merged.key, kind="stable")]
            outputs[w] = merged

        self._run(worker)
        return outputs, self._stats()

    def apriori_pass(self, transactions, candidates
                     ) -> Tuple[Dict[tuple, int], RunStats]:
        """One distributed Apriori support-counting pass.

        Transactions are dealt round-robin; each worker counts the
        candidate itemsets over its share (real subset tests) and the
        partial counters reduce at worker 0 — the dmine task's per-pass
        structure, executed on real baskets.
        """
        from .apriori_support import count_support

        shares = [transactions[w::self.workers]
                  for w in range(self.workers)]
        merged: Dict[tuple, int] = {}

        def worker(w: int):
            share = shares[w]
            share_bytes = sum(8 + 4 * len(t) for t in share)
            yield from self._compute(w, share_bytes)
            counts = count_support(share, candidates)
            counter_bytes = 16 * max(1, len(counts))
            if w == 0:
                for itemset, count in counts.items():
                    merged[itemset] = merged.get(itemset, 0) + count
                for _ in range(self.workers - 1):
                    message = yield from self.messaging.recv(0, "ap")
                    for itemset, count in message.payload.items():
                        merged[itemset] = merged.get(itemset, 0) + count
            else:
                yield from self.messaging.send(
                    w, 0, "ap", counter_bytes, payload=counts)

        self._run(worker)
        return merged, self._stats()

    def hash_join(self, left: np.ndarray, right: np.ndarray
                  ) -> Tuple[List[Tuple[int, int, int]], RunStats]:
        """GRACE join: both sides hash-partitioned, joined at owners."""
        left_parts = self.partition(left)
        right_parts = self.partition(right)
        staged: List[Dict[str, List[np.ndarray]]] = [
            {"left": [], "right": []} for _ in range(self.workers)
        ]
        matches: List[Tuple[int, int, int]] = []

        def worker(w: int):
            for side, parts in (("left", left_parts),
                                ("right", right_parts)):
                part = parts[w]
                yield from self._compute(w, _record_bytes(part))
                owners = (part.key % self.workers if len(part)
                          else np.array([]))
                for dst in range(self.workers):
                    outgoing = part[owners == dst] if len(part) else part
                    if dst == w:
                        staged[w][side].append(outgoing)
                    else:
                        yield from self.messaging.send(
                            w, dst, ("jn", side),
                            _record_bytes(outgoing), payload=outgoing)
            for side in ("left", "right"):
                for _ in range(self.workers - 1):
                    message = yield from self.messaging.recv(
                        w, ("jn", side))
                    staged[w][side].append(message.payload)
            build: Dict[int, List[int]] = {}
            for chunk in staged[w]["left"]:
                for row in chunk:
                    build.setdefault(int(row.key), []).append(
                        int(row.value))
            probe_bytes = sum(_record_bytes(c)
                              for c in staged[w]["right"])
            yield from self._compute(w, probe_bytes)
            for chunk in staged[w]["right"]:
                for row in chunk:
                    for left_value in build.get(int(row.key), ()):
                        matches.append(
                            (int(row.key), left_value, int(row.value)))

        self._run(worker)
        return matches, self._stats()
