"""Support counting for the distributed Apriori pass.

Kept separate from the reference implementation
(:mod:`repro.workloads.algorithms.apriori`) because the functional
engine counts arbitrary candidate sets over arbitrary-size itemsets,
whereas the reference counter is specialized to one candidate size per
pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["count_support"]


def count_support(transactions: Sequence[Tuple[int, ...]],
                  candidates: Iterable[Tuple[int, ...]]
                  ) -> Dict[Tuple[int, ...], int]:
    """Count how many transactions contain each candidate itemset."""
    candidate_sets = [(tuple(c), frozenset(c)) for c in candidates]
    counts: Dict[Tuple[int, ...], int] = {c: 0 for c, _ in candidate_sets}
    for transaction in transactions:
        items = set(transaction)
        for candidate, as_set in candidate_sets:
            if as_set <= items:
                counts[candidate] += 1
    return counts
