"""Functional co-simulation of an Active Disk farm.

The cluster co-simulator (:mod:`repro.funcsim.engine`) exchanges records
over a fat-tree; this module does the same for the Active Disk
architecture: each disk unit holds a partition "on media" (read through
a real :class:`~repro.disk.DiskDrive`, paying seeks and transfers),
filters/aggregates it on its embedded CPU, and ships only results over
the shared dual FC-AL to the front-end, which merges.

Together with the cluster engine this closes the loop for the paper's
central mechanism: you can watch, on real data, that the bytes crossing
the loop are the *results*, not the relation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..disk import DiskDrive, SEAGATE_ST39102
from ..host import Cpu
from ..interconnect import dual_fc_al
from ..sim import Simulator
from .engine import COMPUTE_NS_PER_BYTE, RunStats

__all__ = ["FunctionalActiveDisks"]

MB = 1_000_000


class FunctionalActiveDisks:
    """A small Active Disk farm executing real scans.

    One instance runs one query (build a fresh one per run). Records are
    dealt round-robin to the disks; each disk's share is "read" through
    its drive model in 256 KB requests before the embedded CPU touches
    it, so media time, compute time and loop time all appear in the
    simulated clock.
    """

    def __init__(self, disks: int = 8, disk_cpu_mhz: float = 200.0,
                 frontend_cpu_mhz: float = 450.0,
                 interconnect_rate: float = 200 * MB):
        if disks < 1:
            raise ValueError(f"need at least one disk, got {disks}")
        self.sim = Simulator()
        self.disks = disks
        self.drives = [DiskDrive(self.sim, SEAGATE_ST39102,
                                 name=f"fad{i}")
                       for i in range(disks)]
        self.cpus = [Cpu(self.sim, disk_cpu_mhz, name=f"fadcpu{i}")
                     for i in range(disks)]
        self.frontend_cpu = Cpu(self.sim, frontend_cpu_mhz, name="fad-fe")
        self.fc = dual_fc_al(self.sim, interconnect_rate)

    def partition(self, records: np.ndarray) -> List[np.ndarray]:
        return [records[w::self.disks] for w in range(self.disks)]

    def _read_media(self, disk: int, nbytes: int):
        """Stream a partition off the platters in 256 KB requests."""
        drive = self.drives[disk]
        lbn = 0
        remaining = nbytes
        while remaining > 0:
            request = min(256 * 1024, remaining)
            yield drive.read(lbn, max(512, request))
            lbn += (request + 511) // 512
            remaining -= request

    def _stats(self) -> RunStats:
        return RunStats(
            elapsed=self.sim.now,
            bytes_exchanged=int(self.fc.bytes_moved()),
            messages=0,
        )

    def select(self, records: np.ndarray,
               predicate: Callable[[np.ndarray], np.ndarray]
               ) -> Tuple[np.ndarray, RunStats]:
        """Filter at the disks; only matches cross the loop."""
        parts = self.partition(records)
        collected: List[np.ndarray] = []

        def disklet(w: int):
            part = parts[w]
            nbytes = int(part.nbytes) if len(part) else 0
            if nbytes:
                yield from self._read_media(w, nbytes)
            yield from self.cpus[w].compute(
                COMPUTE_NS_PER_BYTE * 1e-9 * nbytes)
            matches = part[predicate(part)] if len(part) else part
            out_bytes = int(matches.nbytes) if len(matches) else 0
            if out_bytes:
                yield from self.fc.transfer(out_bytes)
            yield from self.frontend_cpu.compute(10e-9 * out_bytes)
            collected.append(matches)

        for w in range(self.disks):
            self.sim.process(disklet(w), name=f"fad-sel{w}")
        self.sim.run()
        output = (np.rec.array(np.concatenate(collected))
                  if any(len(c) for c in collected) else records[:0])
        return output, self._stats()

    def groupby_sum(self, records: np.ndarray
                    ) -> Tuple[Dict[int, int], RunStats]:
        """Aggregate at the disks; partial tables merge at the front-end."""
        parts = self.partition(records)
        merged: Dict[int, int] = {}

        def disklet(w: int):
            part = parts[w]
            nbytes = int(part.nbytes) if len(part) else 0
            if nbytes:
                yield from self._read_media(w, nbytes)
            yield from self.cpus[w].compute(
                COMPUTE_NS_PER_BYTE * 1e-9 * nbytes)
            groups: Dict[int, int] = {}
            if len(part):
                keys, inverse = np.unique(part.key, return_inverse=True)
                sums = np.zeros(len(keys), dtype=np.int64)
                np.add.at(sums, inverse, part.value)
                groups = {int(k): int(s) for k, s in zip(keys, sums)}
            table_bytes = 16 * len(groups)
            if table_bytes:
                yield from self.fc.transfer(table_bytes)
            yield from self.frontend_cpu.compute(8e-9 * table_bytes)
            for key, value in groups.items():
                merged[key] = merged.get(key, 0) + value

        for w in range(self.disks):
            self.sim.process(disklet(w), name=f"fad-gb{w}")
        self.sim.run()
        return merged, self._stats()
