"""Active Disk memory budget: DiskOS footprint, stream buffers, scratch.

Active Disks are expected to carry at most two DRAM chips (paper
Section 3), so DiskOS divides the small memory deliberately:

* a fixed OS footprint (larger when direct disk-to-disk communication is
  enabled, which "complicates the DiskOS and increases its memory
  footprint" — Section 4.4);
* per-stream I/O buffers;
* OS buffers for inter-device communication — the paper doubles and
  quadruples their number for the 64 MB and 128 MB configurations to
  "tolerate longer communication and I/O latencies";
* whatever remains is disklet scratch space (sort runs, hash tables),
  granted at initialization — disklets cannot allocate memory at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryLayout", "DiskMemory"]

MB = 1_000_000
BASE_MEMORY = 32 * MB
BASE_COMM_BUFFERS = 16


@dataclass(frozen=True)
class MemoryLayout:
    """How one Active Disk's DRAM is carved up."""

    total: int
    os_footprint: int
    stream_buffer_bytes: int
    stream_buffers: int
    comm_buffer_bytes: int
    comm_buffers: int

    @property
    def scratch(self) -> int:
        """Bytes left for disklet scratch space."""
        used = (self.os_footprint
                + self.stream_buffers * self.stream_buffer_bytes
                + self.comm_buffers * self.comm_buffer_bytes)
        return max(0, self.total - used)


class DiskMemory:
    """Budget calculator for one Active Disk."""

    def __init__(self, total_bytes: int = BASE_MEMORY,
                 direct_disk_to_disk: bool = True,
                 io_buffer_bytes: int = 256 * 1024):
        if total_bytes < 8 * MB:
            raise ValueError(
                f"Active Disk memory below the 8 MB DiskOS minimum: "
                f"{total_bytes}")
        self.total_bytes = total_bytes
        self.direct_disk_to_disk = direct_disk_to_disk
        self.io_buffer_bytes = io_buffer_bytes

    def layout(self) -> MemoryLayout:
        """The paper's scaling rule: comm buffers scale with total memory."""
        os_footprint = 3 * MB if self.direct_disk_to_disk else 2 * MB
        # Comm buffers double with each doubling of memory (Section 2.1).
        scale = max(1, self.total_bytes // BASE_MEMORY)
        comm_buffers = BASE_COMM_BUFFERS * scale
        return MemoryLayout(
            total=self.total_bytes,
            os_footprint=os_footprint,
            stream_buffer_bytes=self.io_buffer_bytes,
            stream_buffers=4,          # double-buffered input + output
            comm_buffer_bytes=self.io_buffer_bytes,
            comm_buffers=comm_buffers,
        )

    def scratch_bytes(self) -> int:
        return self.layout().scratch
