"""DiskOS: the Active Disk runtime — streams, disklets, memory budget."""

from .disklet import Disklet
from .memory import BASE_COMM_BUFFERS, BASE_MEMORY, DiskMemory, MemoryLayout
from .runtime import (
    DISKLET_RESTART_OVERHEAD,
    DiskletStage,
    disklet_restart_cost,
    phase_from_disklet,
    program_from_disklets,
    validate_disklet,
)
from .scheduler import DiskletScheduler
from .streams import SinkKind, StreamBufferProbe, StreamSpec

__all__ = [
    "Disklet", "StreamSpec", "SinkKind", "StreamBufferProbe",
    "DiskMemory", "MemoryLayout", "BASE_MEMORY", "BASE_COMM_BUFFERS",
    "DiskletStage", "validate_disklet", "phase_from_disklet",
    "program_from_disklets", "DiskletScheduler",
    "DISKLET_RESTART_OVERHEAD", "disklet_restart_cost",
]
