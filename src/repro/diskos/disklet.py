"""Disklets: the unit of application code downloaded into an Active Disk.

A disklet is declared, not programmed: following the stream-based model of
the ASPLOS'98 Active Disks paper, a disklet is a node in a coarse-grain
dataflow graph whose behaviour — for simulation purposes — is fully
captured by its per-byte processing cost and the routing/volume of its
output streams. DiskOS enforces the sandbox by construction: the only
resources a disklet touches are the ones declared here.

Costs are expressed at :data:`~repro.host.cpu.REFERENCE_MHZ` (the trace
machine); the Active Disk's embedded CPU stretches them by its clock
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .streams import SinkKind, StreamSpec

__all__ = ["Disklet"]


@dataclass(frozen=True)
class Disklet:
    """Declaration of one disklet.

    Attributes
    ----------
    cpu_ns_per_byte:
        Processing cost per input-stream byte, in nanoseconds on the
        reference machine.
    outputs:
        The output streams, each bound to a fixed sink.
    recv_cpu_ns_per_byte:
        Cost per byte arriving from peer disks (e.g. the sorter's append
        and run-formation work).
    recv_write_fraction:
        Fraction of received bytes written to the local media (run files,
        partition files).
    scratch_bytes:
        Scratch space requested at initialization. DiskOS refuses to run
        a disklet whose scratch does not fit the memory layout.
    """

    name: str
    cpu_ns_per_byte: float = 0.0
    outputs: Tuple[StreamSpec, ...] = ()
    recv_cpu_ns_per_byte: float = 0.0
    recv_write_fraction: float = 0.0
    scratch_bytes: int = 0

    def __post_init__(self) -> None:
        if self.cpu_ns_per_byte < 0 or self.recv_cpu_ns_per_byte < 0:
            raise ValueError(f"{self.name}: negative CPU cost")
        if not 0.0 <= self.recv_write_fraction <= 1.0 + 1e-9:
            raise ValueError(
                f"{self.name}: recv_write_fraction out of [0, 1]: "
                f"{self.recv_write_fraction}")
        if self.scratch_bytes < 0:
            raise ValueError(f"{self.name}: negative scratch request")

    @property
    def uses_peers(self) -> bool:
        """True when any output stream targets peer disks."""
        return any(spec.sink is SinkKind.PEER for spec in self.outputs)

    def output_to(self, sink: SinkKind) -> float:
        """Total output fraction routed to ``sink``."""
        return sum(spec.fraction for spec in self.outputs
                   if spec.sink is sink)

    def fixed_to(self, sink: SinkKind) -> int:
        """Total fixed (end-of-stream) bytes routed to ``sink``."""
        return sum(spec.fixed_bytes for spec in self.outputs
                   if spec.sink is sink)
