"""DiskOS runtime: from disklet declarations to executable programs.

The Active Disk programming model (paper Section 3) structures
applications as coarse-grain dataflow graphs of sandboxed disklets. This
module is the bridge between that model and the machine engines:

* :func:`validate_disklet` enforces the sandbox against a concrete
  memory layout — scratch must fit, peer streams require direct
  disk-to-disk communication support;
* :func:`phase_from_disklet` lowers one disklet stage (the disklet run
  by every disk over its input share, plus the receiving-side costs) to
  the architecture-neutral :class:`~repro.arch.program.Phase`;
* :func:`program_from_disklets` assembles a full
  :class:`~repro.arch.program.TaskProgram` from a pipeline of stages.

The custom-disklet example and the DiskOS tests build tasks this way;
the eight built-in tasks construct their phases directly (they predate
their disklet forms, like the paper's own C implementations did).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..arch.program import CostComponent, Phase, TaskProgram
from .disklet import Disklet
from .memory import MemoryLayout
from .streams import SinkKind

__all__ = ["DiskletStage", "validate_disklet", "phase_from_disklet",
           "program_from_disklets", "DISKLET_RESTART_OVERHEAD",
           "disklet_restart_cost"]

#: Seconds of on-disk CPU time DiskOS spends re-dispatching a crashed
#: disklet: tear down the sandbox, reload code + scratch from the
#: resident image and replay the stream cursor. Measured in the same
#: spirit as the paper's fixed OS costs — a small constant, large next
#: to a block's compute cost.
DISKLET_RESTART_OVERHEAD = 2e-3


def disklet_restart_cost(scratch_bytes: int = 0,
                         reload_rate: float = 100e6) -> float:
    """Restart cost for a disklet with ``scratch_bytes`` of state.

    The fixed :data:`DISKLET_RESTART_OVERHEAD` plus the time to rebuild
    the scratch area at ``reload_rate`` bytes/s from the on-media image.
    """
    if scratch_bytes < 0:
        raise ValueError(f"negative scratch size: {scratch_bytes}")
    if reload_rate <= 0:
        raise ValueError(f"reload rate must be positive, got {reload_rate}")
    return DISKLET_RESTART_OVERHEAD + scratch_bytes / reload_rate


@dataclass(frozen=True)
class DiskletStage:
    """One stage of a disklet pipeline.

    Attributes
    ----------
    disklet:
        The disklet every disk runs for this stage.
    read_bytes_total:
        Input-stream volume across all disks (read from local media).
    read_streams:
        Interleaved sequential input streams per disk.
    frontend_cpu_ns_per_byte:
        Host-side cost per byte the front-end receives from this stage.
    """

    disklet: Disklet
    read_bytes_total: int
    read_streams: int = 1
    frontend_cpu_ns_per_byte: float = 0.0


def validate_disklet(disklet: Disklet, layout: MemoryLayout,
                     direct_disk_to_disk: bool = True) -> None:
    """Enforce the DiskOS sandbox for one disklet.

    Raises ``ValueError`` when the disklet cannot be initialized: its
    scratch request exceeds the memory layout's scratch region, or it
    declares peer streams on a machine whose DiskOS was built without
    direct disk-to-disk support (streams are bound at initialization —
    a disklet cannot reroute them later).
    """
    if disklet.scratch_bytes > layout.scratch:
        raise ValueError(
            f"disklet {disklet.name!r}: scratch request "
            f"{disklet.scratch_bytes} exceeds the {layout.scratch}-byte "
            f"scratch region")
    if disklet.uses_peers and not direct_disk_to_disk:
        raise ValueError(
            f"disklet {disklet.name!r}: declares PEER output streams but "
            f"this DiskOS routes all communication through the front-end")


def phase_from_disklet(stage: DiskletStage,
                       name: Optional[str] = None) -> Phase:
    """Lower one disklet stage to an architecture-neutral phase."""
    disklet = stage.disklet
    recv = ()
    if disklet.recv_cpu_ns_per_byte > 0:
        recv = (CostComponent("recv", disklet.recv_cpu_ns_per_byte),)
    return Phase(
        name=name or disklet.name,
        read_bytes_total=stage.read_bytes_total,
        cpu=(CostComponent("disklet", disklet.cpu_ns_per_byte),)
        if disklet.cpu_ns_per_byte > 0 else (),
        shuffle_fraction=disklet.output_to(SinkKind.PEER),
        shuffle_fixed_per_worker=disklet.fixed_to(SinkKind.PEER),
        recv=recv,
        recv_write_fraction=disklet.recv_write_fraction,
        frontend_fraction=disklet.output_to(SinkKind.FRONTEND),
        frontend_fixed_per_worker=disklet.fixed_to(SinkKind.FRONTEND),
        frontend_cpu_ns_per_byte=stage.frontend_cpu_ns_per_byte,
        write_fraction=disklet.output_to(SinkKind.MEDIA),
        read_streams=stage.read_streams,
        scratch_bytes=disklet.scratch_bytes,
    )


def program_from_disklets(task: str, stages: Sequence[DiskletStage],
                          layout: Optional[MemoryLayout] = None,
                          direct_disk_to_disk: bool = True) -> TaskProgram:
    """Assemble a task program from a pipeline of disklet stages.

    When ``layout`` is given, every disklet is validated against the
    sandbox first.
    """
    if not stages:
        raise ValueError(f"{task}: a disklet program needs stages")
    if layout is not None:
        for stage in stages:
            validate_disklet(stage.disklet, layout, direct_disk_to_disk)
    phases = tuple(
        phase_from_disklet(stage, name=f"{stage.disklet.name}")
        for stage in stages
    )
    return TaskProgram(task=task, phases=phases)
