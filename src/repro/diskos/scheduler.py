"""Disklet scheduling: time-slicing the embedded CPU among disklets.

DiskOS "provides support for scheduling disklets as well as for managing
memory, I/O and stream communication" (paper Section 2.3). The paper's
experiments run one query at a time, but the runtime itself multiplexes:
several resident disklets share the one embedded processor.

:class:`DiskletScheduler` implements round-robin quantum scheduling on
top of a :class:`~repro.host.Cpu`: each disklet's work is diced into
quanta that queue FIFO behind the CPU, so concurrent disklets interleave
at quantum granularity and make proportional progress. A fixed dispatch
cost is charged per quantum — the price of multiplexing a processor with
no spare registers.

Used by the mixed-workload experiments (`Machine.run_concurrent`) as the
conceptual model; exposed directly for DiskOS-level studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator

from ..host import Cpu
from ..sim import Event, Simulator

__all__ = ["DiskletScheduler"]

#: Disklet dispatch cost per quantum, seconds at the disk CPU's own
#: clock (sandbox entry/exit + stream-buffer pointer swap).
DISPATCH_COST = 20e-6


class DiskletScheduler:
    """Round-robin quantum scheduler over one embedded CPU."""

    def __init__(self, sim: Simulator, cpu: Cpu, quantum: float = 5e-3,
                 dispatch_cost: float = DISPATCH_COST):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if dispatch_cost < 0:
            raise ValueError(f"negative dispatch cost: {dispatch_cost}")
        self.sim = sim
        self.cpu = cpu
        self.quantum = quantum
        self.dispatch_cost = dispatch_cost
        self.resident: Dict[str, float] = {}   # name -> CPU seconds used
        self.dispatches = 0

    def register(self, name: str) -> None:
        """Make a disklet resident (idempotent)."""
        self.resident.setdefault(name, 0.0)

    def run(self, name: str,
            reference_seconds: float) -> Generator[Event, Any, None]:
        """Charge ``reference_seconds`` of disklet work, quantum-sliced.

        Blocks until the work completes; concurrent callers interleave
        at quantum granularity through the CPU's FIFO queue.
        """
        if reference_seconds < 0:
            raise ValueError(f"negative work: {reference_seconds}")
        self.register(name)
        tel = self.sim.telemetry
        began = self.sim.now
        quanta = 0
        remaining = self.cpu.scaled(reference_seconds)
        while remaining > 0:
            slice_seconds = min(self.quantum, remaining)
            if self.dispatch_cost > 0:
                yield from self.cpu.compute_raw(
                    self.dispatch_cost, bucket="dispatch")
            yield from self.cpu.compute_raw(
                slice_seconds, bucket=f"disklet:{name}")
            self.resident[name] += slice_seconds
            self.dispatches += 1
            quanta += 1
            remaining -= slice_seconds
        if tel.enabled and quanta:
            tel.spans.complete(
                "diskos", f"disklet:{name}", f"diskos.{self.cpu.name}",
                began, self.sim.now - began, args={"quanta": quanta})
            tel.registry.counter(
                f"diskos.{self.cpu.name}.dispatches").add(quanta)

    def usage(self, name: str) -> float:
        """CPU seconds a disklet has consumed so far."""
        return self.resident.get(name, 0.0)

    def overhead_fraction(self) -> float:
        """Dispatch overhead as a fraction of all scheduled CPU time."""
        work = sum(self.resident.values())
        overhead = self.dispatches * self.dispatch_cost
        total = work + overhead
        return overhead / total if total > 0 else 0.0
