"""The stream abstraction of the Active Disk programming model.

Disklets are sandboxed: they cannot initiate I/O, cannot allocate memory,
and cannot redirect where their streams come from or go to (paper,
Section 3). A disklet sees only:

* one **input stream** fed by DiskOS from the media (or from peer disks),
* one or more **output streams**, each bound at initialization to a fixed
  sink — the front-end host, a peer disk, the local media, or the bit
  bucket (for data the disklet consumes, e.g. filtered-out tuples).

A :class:`StreamSpec` describes an output as a *fraction* of the input
volume (plus an optional fixed tail emitted at end-of-stream), which is
how the trace generator expresses data reductions like select's 1 %
selectivity or group-by's counter tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["SinkKind", "StreamSpec", "StreamBufferProbe"]


class SinkKind(Enum):
    """Where an output stream is routed. Fixed at disklet initialization."""

    DISCARD = "discard"      # consumed by the disklet (e.g. filtered out)
    FRONTEND = "frontend"    # to the front-end host over the interconnect
    PEER = "peer"            # to peer disks (requires direct disk-to-disk)
    MEDIA = "media"          # written back to the local platters


@dataclass(frozen=True)
class StreamSpec:
    """One output stream of a disklet.

    Attributes
    ----------
    sink:
        Where the stream's bytes go.
    fraction:
        Bytes emitted per input byte (0.01 for a 1 %-selective filter,
        1.0 for a repartitioning shuffle).
    fixed_bytes:
        Bytes emitted once, at end of input (counter tables, partial
        aggregates).
    spread:
        For PEER sinks: over how many peers the output is spread
        (0 = all other disks, uniformly).
    """

    sink: SinkKind
    fraction: float = 0.0
    fixed_bytes: int = 0
    spread: int = 0

    def __post_init__(self) -> None:
        if self.fraction < 0:
            raise ValueError(f"negative stream fraction: {self.fraction}")
        if self.fixed_bytes < 0:
            raise ValueError(f"negative fixed bytes: {self.fixed_bytes}")
        if self.sink is SinkKind.DISCARD and (self.fraction or self.fixed_bytes):
            raise ValueError("DISCARD streams carry no accounted bytes")

    def bytes_for(self, input_bytes: int, input_total: int,
                  emitted_fixed: bool) -> int:
        """Output bytes owed for ``input_bytes`` of input.

        ``emitted_fixed`` tells whether the fixed tail was already sent;
        the caller emits it once when the input stream ends.
        """
        owed = int(round(self.fraction * input_bytes))
        if not emitted_fixed and input_bytes >= input_total:
            owed += self.fixed_bytes
        return owed


class StreamBufferProbe:
    """Telemetry shim over one DiskOS stream/communication buffer pool.

    DiskOS grants a fixed number of buffers per disk (see
    :class:`~repro.diskos.memory.MemoryLayout`); the machines gate peer
    transfers on them. Wrapping acquire/release in this probe publishes
    the pool's occupancy as a time-weighted ``series`` metric (average =
    mean buffers held, peak = high-water mark), which is how buffer
    starvation shows up in a metrics report. Costs nothing when the
    telemetry hub is the null one.

    With a fault port attached (``faults``), :meth:`stall_wait` lets the
    owning machine model a ``stream_stall`` window — DiskOS withholding
    buffer grants, e.g. while its buffer cache recovers — by blocking
    the requester until the window clears.

    With an armed invariant hub attached (``invariants``), the probe
    registers for periodic occupancy sweeps and :meth:`acquire` raises a
    structured ``occupancy-bounds`` violation the instant the pool is
    over-granted — the buffers are a fixed slice of the DiskOS memory
    layout, so holding more than ``capacity`` means the credit gate
    leaked.
    """

    def __init__(self, telemetry, name: str, capacity: int, faults=None,
                 invariants=None):
        if capacity < 1:
            raise ValueError(f"{name}: buffer pool capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.held = 0
        self.faults = faults
        self._series = (telemetry.registry.series(name)
                        if telemetry.enabled else None)
        self._audit = None
        if invariants is not None and invariants.enabled:
            self._audit = invariants
            invariants.watch_probe(self)

    def stall_wait(self, sim):
        """Generator: block while a ``stream_stall`` fault is active."""
        if self.faults is not None and self.faults.active:
            yield from self.faults.wait_out(
                sim, kinds=("stream_stall",),
                counter="faults.stream.stalls")

    def acquire(self) -> None:
        """Note one buffer granted (call after the credit is held)."""
        self.held += 1
        if self._audit is not None and self.held > self.capacity:
            self._audit.fail(
                f"buffer.{self.name}", "occupancy-bounds",
                expected=f"held <= {self.capacity}",
                observed=self.held,
                detail="a buffer was granted past the fixed DiskOS pool "
                       "(credit gate bypassed or leaked)")
        if self._series is not None:
            self._series.set(float(self.held))

    def release(self) -> None:
        """Note one buffer returned."""
        if self.held <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.held -= 1
        if self._series is not None:
            self._series.set(float(self.held))

    def occupancy(self) -> float:
        """Fraction of the pool currently held."""
        return self.held / self.capacity
