"""Regression comparison between two experiment result sets.

Exported rows (``repro.experiments.export``) make result sets
persistable; this module diffs two of them — a stored baseline and a
fresh run — and reports cells whose timings moved beyond a tolerance.
Intended for tracking the simulator itself across code changes (a
calibration-drift alarm), not for comparing architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .report import render_table

__all__ = ["Regression", "compare_rows", "render_regressions"]

Row = Dict[str, object]

#: Row fields that identify a cell (everything except measurements).
KEY_FIELDS = ("figure", "task", "arch", "disks", "variant", "memory_mb",
              "mode", "phase", "bucket")


@dataclass(frozen=True)
class Regression:
    """One cell whose measurement moved."""

    key: Tuple
    metric: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Relative change: +0.25 means 25 % slower/larger."""
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.baseline) / self.baseline


def _key_of(row: Row) -> Tuple:
    return tuple((field, row[field]) for field in KEY_FIELDS
                 if field in row)


def compare_rows(baseline: Sequence[Row], current: Sequence[Row],
                 metric: str = "elapsed_s",
                 tolerance: float = 0.05) -> List[Regression]:
    """Cells where ``metric`` moved more than ``tolerance`` (relative).

    Cells present in only one set are ignored (they are schema changes,
    not regressions); compare row counts separately if that matters.
    """
    if tolerance < 0:
        raise ValueError(f"negative tolerance: {tolerance}")
    base_index = {_key_of(row): row for row in baseline
                  if metric in row}
    regressions: List[Regression] = []
    for row in current:
        if metric not in row:
            continue
        key = _key_of(row)
        base_row = base_index.get(key)
        if base_row is None:
            continue
        base_value = float(base_row[metric])
        value = float(row[metric])
        denom = abs(base_value) if base_value else 1.0
        if abs(value - base_value) / denom > tolerance:
            regressions.append(Regression(
                key=key, metric=metric,
                baseline=base_value, current=value))
    regressions.sort(key=lambda r: -abs(r.change))
    return regressions


def render_regressions(regressions: Sequence[Regression]) -> str:
    if not regressions:
        return "no regressions"
    rows = []
    for regression in regressions:
        label = " ".join(f"{field}={value}"
                         for field, value in regression.key)
        rows.append((label, f"{regression.baseline:.4g}",
                     f"{regression.current:.4g}",
                     f"{regression.change:+.1%}"))
    return render_table(
        f"{len(regressions)} regression(s)",
        ("cell", "baseline", "current", "change"),
        rows)
