"""The resilient sweep harness: journaled, resumable, signal-safe sweeps.

:class:`SweepRunner` ties the pieces together: it folds an existing
:class:`~repro.experiments.journal.SweepJournal` to skip completed cells
(reloading their cached results bit-identically), hands the incomplete
cells to the :mod:`~repro.experiments.workers` pool (process isolation,
timeouts, retries, quarantine), journals every state transition as it
happens, and converts SIGINT/SIGTERM into a clean shutdown: live workers
are terminated, the journal is flushed, and a one-line
``repro resume <journal>`` hint is printed before
:class:`SweepInterrupted` propagates.

Figure drivers take an optional ``runner``; without one they execute
cells inline in the calling process — the historical, byte-identical
default. With one, any driver sweep becomes restartable::

    runner = SweepRunner(journal_path="results/fig1.journal.jsonl",
                         jobs=4, timeout=600, retries=1)
    figure = run_fig1(sizes=(16, 64), runner=runner)

Harness activity is observable: every runner keeps ``harness.*``
counters (``resumed_cells``, ``retries``, ``timeouts``, ``crashes``,
``violations``, ``completed``, ``quarantined``) and mirrors them into a
:class:`~repro.telemetry.Telemetry` hub's metric registry when one is
supplied.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch import RunResult
from .artifacts import result_from_dict, result_to_dict
from .journal import SweepJournal
from .workers import CellOutcome, CellSpec, run_cell, run_cells

__all__ = ["SweepRunner", "SweepInterrupted", "execute_cells",
           "resume_sweep"]

#: Counter names every runner tracks (and mirrors into telemetry).
COUNTERS = ("scheduled", "resumed_cells", "completed", "retries",
            "timeouts", "crashes", "violations", "ooms", "quarantined")


class SweepInterrupted(Exception):
    """A sweep was stopped by SIGINT/SIGTERM; state is in the journal."""

    def __init__(self, message: str, journal_path: Optional[str] = None):
        super().__init__(message)
        self.journal_path = journal_path


class SweepRunner:
    """Executes sweep cells with journaling, isolation and recovery."""

    def __init__(self, journal_path: Optional[str] = None, *,
                 jobs: int = 1,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 backoff: float = 0.05,
                 strict: bool = True,
                 telemetry=None,
                 meta: Optional[Dict] = None,
                 mp_context: Optional[str] = None,
                 memory_budget_mb: Optional[int] = None):
        self.journal_path = journal_path
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.strict = strict
        self.telemetry = telemetry
        self.meta = dict(meta or {})
        self.mp_context = mp_context
        self.memory_budget_mb = memory_budget_mb
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.quarantined: List[CellOutcome] = []

    # -------------------------------------------------------- counters
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.telemetry is not None:
            self.telemetry.registry.counter(f"harness.{name}").add(amount)

    # ------------------------------------------------------------- run
    def run(self, specs: Sequence[CellSpec],
            after_cell: Optional[Callable[[CellOutcome], None]] = None,
            ) -> Dict[str, RunResult]:
        """Run every spec to completion, returning results by cell key.

        Already-done journal cells with a matching config hash are
        reloaded, not re-run. ``after_cell`` is a post-journal hook per
        terminal cell (used by tests to interrupt deterministically).
        Raises :class:`SweepInterrupted` on SIGINT/SIGTERM, and — when
        ``strict`` — ``RuntimeError`` if any cell ended quarantined.
        """
        seen = set()
        for spec in specs:
            if spec.key in seen:
                raise ValueError(f"duplicate sweep cell key {spec.key!r}")
            seen.add(spec.key)

        journal = (SweepJournal.load(self.journal_path)
                   if self.journal_path else None)
        results: Dict[str, RunResult] = {}
        todo: List[CellSpec] = []
        if journal is not None and self.meta and not journal.meta:
            journal.note_sweep(self.meta)
        for spec in specs:
            state = journal.cells.get(spec.key) if journal else None
            if (state is not None and state.status == "done"
                    and state.config_hash == spec.config_hash()
                    and state.result is not None):
                results[spec.key] = result_from_dict(state.result)
                self._count("resumed_cells")
                continue
            todo.append(spec)
            if journal is not None and (
                    state is None
                    or state.config_hash != spec.config_hash()):
                journal.note_cell(spec.key, "pending",
                                  spec=spec.to_dict(),
                                  config_hash=spec.config_hash())
        self._count("scheduled", len(todo))

        def on_start(spec: CellSpec, attempt: int) -> None:
            if journal is not None:
                journal.note_cell(spec.key, "running", attempt=attempt)
            if attempt > 0:
                self._count("retries")

        def on_attempt_failed(spec: CellSpec, attempt: int,
                              error: str, kind: str) -> None:
            if journal is not None:
                journal.note_cell(spec.key, "failed", attempt=attempt,
                                  error=_last_line(error))
            if kind == "timeout":
                self._count("timeouts")
            elif kind == "crashed":
                self._count("crashes")
            elif kind == "violation":
                self._count("violations")
            elif kind == "oom":
                self._count("ooms")

        def on_outcome(outcome: CellOutcome) -> None:
            if outcome.status == "done":
                results[outcome.key] = outcome.result
                self._count("completed")
                if journal is not None:
                    journal.note_cell(
                        outcome.key, "done", attempt=outcome.attempts - 1,
                        result=result_to_dict(outcome.result))
            else:
                self.quarantined.append(outcome)
                self._count("quarantined")
                if journal is not None:
                    journal.note_cell(
                        outcome.key, "quarantined",
                        attempt=outcome.attempts - 1,
                        error=_last_line(outcome.error or ""),
                        violation=outcome.violation,
                        oom=outcome.oom or None)
            if after_cell is not None:
                after_cell(outcome)

        try:
            with _signal_shield():
                run_cells(todo, jobs=self.jobs, timeout=self.timeout,
                          retries=self.retries, backoff=self.backoff,
                          on_start=on_start,
                          on_attempt_failed=on_attempt_failed,
                          on_outcome=on_outcome,
                          mp_context=self.mp_context,
                          memory_budget_mb=self.memory_budget_mb)
        except (KeyboardInterrupt, SweepInterrupted) as exc:
            if journal is not None:
                journal.close()
                print(f"sweep interrupted — resume with: "
                      f"repro resume {self.journal_path}", file=sys.stderr)
            raise SweepInterrupted(
                f"sweep interrupted with {len(results)} of {len(specs)} "
                f"cells complete", journal_path=self.journal_path) from exc
        finally:
            if journal is not None:
                journal.close()

        if self.quarantined and self.strict:
            keys = ", ".join(o.key for o in self.quarantined)
            raise RuntimeError(
                f"{len(self.quarantined)} cell(s) quarantined after "
                f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}: "
                f"{keys}\nlast error:\n{self.quarantined[-1].error}")
        return results


class _signal_shield:
    """Convert SIGTERM into KeyboardInterrupt for the enclosed block.

    SIGINT already raises KeyboardInterrupt; routing SIGTERM through the
    same path gives both signals the same drain-flush-hint shutdown.
    Restores the previous handler on exit, and degrades to a no-op off
    the main thread (where ``signal.signal`` is forbidden).
    """

    def __enter__(self):
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            def _raise(signum, frame):
                raise KeyboardInterrupt("SIGTERM")
            try:
                self._previous = signal.signal(signal.SIGTERM, _raise)
            except (ValueError, OSError):  # pragma: no cover
                self._previous = None
        return self

    def __exit__(self, *exc):
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
        return False


def _last_line(text: str) -> str:
    """The most informative single line of a traceback blob."""
    lines = [line.strip() for line in text.strip().splitlines()
             if line.strip()]
    return lines[-1] if lines else ""


def execute_cells(specs: Sequence[CellSpec],
                  runner: Optional[SweepRunner] = None,
                  ) -> Dict[str, RunResult]:
    """Run specs through ``runner``, or inline (the historical path).

    The inline path executes cells in order, in-process, with no journal
    — exactly what the figure drivers always did, so results and
    artifacts stay byte-identical when no runner is supplied.
    """
    if runner is None:
        return {spec.key: run_cell(spec) for spec in specs}
    return runner.run(specs)


def resume_sweep(journal_path: str, *,
                 jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, strict: bool = True,
                 telemetry=None,
                 memory_budget_mb: Optional[int] = None,
                 ) -> Tuple[Dict, Dict[str, RunResult]]:
    """Complete a sweep from its journal alone.

    Rebuilds every journaled cell spec, reloads the done ones, re-runs
    the rest (including cells left ``running`` by a killed process), and
    returns ``(sweep meta, results by key)``.
    """
    journal = SweepJournal.load(journal_path)
    if not journal.cells:
        raise ValueError(f"{journal_path}: no journaled cells to resume")
    specs = []
    for key, state in journal.cells.items():
        if state.spec is None:
            raise ValueError(f"{journal_path}: cell {key!r} has no "
                             f"recorded spec; cannot resume")
        specs.append(CellSpec.from_dict(state.spec))
    runner = SweepRunner(journal_path, jobs=jobs, timeout=timeout,
                         retries=retries, strict=strict,
                         telemetry=telemetry,
                         memory_budget_mb=memory_budget_mb)
    return dict(journal.meta), runner.run(specs)
