"""Crash-safe experiment artifacts: atomic writes, checksummed manifests,
and a schema-validated :class:`RunResult` JSON round-trip.

A sweep that dies mid-write must never leave a torn CSV/JSON behind, and
a resumed sweep must be able to trust what an earlier (possibly killed)
process wrote. Three mechanisms provide that:

* :func:`atomic_write_text` / :func:`atomic_write_bytes` — write to a
  temporary file in the destination directory, fsync, then ``os.replace``
  so readers only ever observe the old or the new content, never a mix;
* ``results/MANIFEST.json`` — a SHA-256 checksum per artifact
  (:func:`write_manifest` / :func:`verify_manifest`) so corruption or a
  half-finished generation is detectable after the fact;
* :func:`result_to_dict` / :func:`result_from_dict` — a versioned,
  validated JSON encoding of :class:`~repro.arch.RunResult` used by the
  sweep journal to cache completed cells. Floats survive the round trip
  exactly (``json`` uses ``repr``), so a reloaded result is bit-identical
  to the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from ..arch.base import PhaseResult, RunResult
from ..durability.io_layer import current_io

__all__ = [
    "atomic_write_text", "atomic_write_bytes", "sha256_file",
    "write_manifest", "load_manifest", "verify_manifest",
    "manifest_report", "MANIFEST_NAME",
    "result_to_dict", "result_from_dict", "RESULT_SCHEMA_VERSION",
]

#: Version stamp of the serialized RunResult schema; bumped on any
#: incompatible change so stale journals fail loudly instead of subtly.
RESULT_SCHEMA_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"


# ------------------------------------------------------------- atomic I/O
def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    All steps go through the active IO layer
    (:mod:`repro.durability.io_layer`), so the durability gauntlet can
    inject faults and crash points into this exact sequence. On any
    failure the temporary file is removed; the destination only ever
    holds its old or its new content, never a mix.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    io = current_io()
    handle, tmp = io.mkstemp(directory,
                             prefix=f".{os.path.basename(path)}.",
                             suffix=".tmp")
    try:
        with handle:
            io.write(handle, data)
            io.fsync(handle)
        io.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    io.fsync_dir(directory)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def _fsync_directory(directory: str) -> None:
    """Best-effort durability of the rename itself."""
    current_io().fsync_dir(directory)


# --------------------------------------------------------------- manifest
def sha256_file(path: str, chunk_bytes: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def write_manifest(directory: str,
                   names: Optional[Sequence[str]] = None) -> Dict:
    """(Re)write ``MANIFEST.json`` for artifacts in ``directory``.

    ``names`` restricts the manifest to those relative file names;
    the default covers every regular file except the manifest itself,
    journals (``*.journal.jsonl`` — append-only, so never "final") and
    in-flight temporaries.
    """
    directory = os.fspath(directory)
    if names is None:
        names = sorted(
            name for name in os.listdir(directory)
            if os.path.isfile(os.path.join(directory, name))
            and name != MANIFEST_NAME
            and not name.endswith((".tmp", ".journal.jsonl"))
            and not name.startswith("."))
    files = {}
    for name in names:
        path = os.path.join(directory, name)
        files[name] = {"sha256": sha256_file(path),
                       "bytes": os.path.getsize(path)}
    manifest = {"version": 1, "files": files}
    atomic_write_text(os.path.join(directory, MANIFEST_NAME),
                      json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def load_manifest(directory: str) -> Optional[Dict]:
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def manifest_report(directory: str) -> Optional[Dict[str, str]]:
    """Re-hash every manifest entry: ``{name: "ok" | problem}``.

    Returns ``None`` when the directory has no manifest at all. The
    per-file statuses are what ``repro doctor --verify-artifacts``
    prints as drift.
    """
    manifest = load_manifest(directory)
    if manifest is None:
        return None
    report: Dict[str, str] = {}
    for name, entry in sorted(manifest.get("files", {}).items()):
        path = os.path.join(os.fspath(directory), name)
        if not os.path.exists(path):
            report[name] = "missing"
        elif sha256_file(path) != entry.get("sha256"):
            report[name] = "checksum mismatch"
        else:
            report[name] = "ok"
    return report


def verify_manifest(directory: str) -> List[str]:
    """Check every manifest entry; return human-readable problems."""
    report = manifest_report(directory)
    if report is None:
        return [f"no {MANIFEST_NAME} in {directory}"]
    return [f"{name}: {status}" for name, status in report.items()
            if status != "ok"]


# ------------------------------------------- RunResult JSON round-trip
def result_to_dict(result: RunResult) -> Dict:
    """Serialize a :class:`RunResult` to plain JSON-compatible data."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "task": result.task,
        "arch": result.arch,
        "num_disks": result.num_disks,
        "elapsed": result.elapsed,
        "phases": [
            {"name": phase.name, "elapsed": phase.elapsed,
             "workers": phase.workers, "busy": dict(phase.busy)}
            for phase in result.phases
        ],
        "extras": dict(result.extras),
    }


def _expect(mapping: Dict, key: str, kinds, where: str):
    if key not in mapping:
        raise ValueError(f"{where}: missing field {key!r}")
    value = mapping[key]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ValueError(
            f"{where}: field {key!r} has type {type(value).__name__}")
    return value


def result_from_dict(data: Dict) -> RunResult:
    """Validate and rebuild a :class:`RunResult` written by
    :func:`result_to_dict`; raises :class:`ValueError` on any mismatch."""
    if not isinstance(data, dict):
        raise ValueError(f"RunResult: expected object, got "
                         f"{type(data).__name__}")
    schema = _expect(data, "schema", int, "RunResult")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(f"RunResult: schema version {schema} "
                         f"(this code reads {RESULT_SCHEMA_VERSION})")
    phases_raw = _expect(data, "phases", list, "RunResult")
    phases = []
    for index, phase in enumerate(phases_raw):
        where = f"RunResult.phases[{index}]"
        if not isinstance(phase, dict):
            raise ValueError(f"{where}: expected object")
        busy = _expect(phase, "busy", dict, where)
        for label, value in busy.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{where}: busy[{label!r}] is not numeric")
        phases.append(PhaseResult(
            name=_expect(phase, "name", str, where),
            elapsed=float(_expect(phase, "elapsed", (int, float), where)),
            workers=_expect(phase, "workers", int, where),
            busy={str(k): float(v) for k, v in busy.items()},
        ))
    extras = _expect(data, "extras", dict, "RunResult")
    for key, value in extras.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"RunResult: extras[{key!r}] is not numeric")
    return RunResult(
        task=_expect(data, "task", str, "RunResult"),
        arch=_expect(data, "arch", str, "RunResult"),
        num_disks=_expect(data, "num_disks", int, "RunResult"),
        elapsed=float(_expect(data, "elapsed", (int, float), "RunResult")),
        phases=phases,
        extras={str(k): float(v) for k, v in extras.items()},
    )
