"""Drivers that regenerate every table and figure of the paper.

Each ``run_*`` function executes the simulations and returns a structured
result object whose ``render()`` produces the same rows/series the paper
reports (normalized execution times, percentage improvements, breakdown
fractions). The benchmark suite wraps these and asserts the paper's
qualitative shapes; EXPERIMENTS.md records paper-vs-measured values.

Every figure driver declares its sweep as a list of
:class:`~repro.experiments.workers.CellSpec` and executes it through
:func:`~repro.experiments.harness.execute_cells`: by default that runs
the cells inline, in order, in this process (byte-identical to the
historical drivers), but passing a
:class:`~repro.experiments.harness.SweepRunner` makes the same sweep
journaled, resumable and process-parallel (see ``docs/HARNESS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..arch import (
    cost_table,
    smp_cost_estimate,
)
from ..arch.base import RunResult
from ..workloads import TABLE2, registered_tasks
from .harness import execute_cells
from .report import render_table
from .runner import DEFAULT_SCALE, Sweep, SweepCell
from .workers import CellSpec

__all__ = [
    "run_table1", "run_table2",
    "Fig1Result", "run_fig1",
    "Fig2Result", "run_fig2",
    "Fig3Result", "run_fig3",
    "Fig4Result", "run_fig4",
    "Fig5Result", "run_fig5",
]

CORE_SIZES = (16, 32, 64, 128)


# ---------------------------------------------------------------- tables
def run_table1(num_disks: int = 64) -> str:
    """Table 1: cost evolution of Active Disk vs cluster configurations."""
    rows = [(date, f"${active:,.0f}", f"${cluster:,.0f}", f"{ratio:.2f}")
            for date, active, cluster, ratio in cost_table(num_disks)]
    table = render_table(
        f"Table 1: {num_disks}-node configuration cost over one year",
        ("date", "active disks", "cluster", "active/cluster"),
        rows)
    smp = smp_cost_estimate(num_disks)
    return table + f"\nSMP ({num_disks} cpus, est.): ${smp:,.0f}"


def run_table2() -> str:
    """Table 2: the dataset used for each task."""
    rows = [(spec.task, f"{spec.total_bytes / 1e9:.0f} GB",
             spec.tuple_bytes, f"{spec.tuple_count:,}", spec.description)
            for spec in TABLE2.values()]
    return render_table(
        "Table 2: datasets for the tasks in the workload",
        ("task", "size", "tuple B", "tuples", "description"),
        rows)


# ---------------------------------------------------------------- figure 1
@dataclass
class Fig1Result:
    """Normalized execution times, tasks x architectures x sizes."""

    sweep: Sweep
    sizes: Tuple[int, ...]
    tasks: Tuple[str, ...]
    scale: float

    def normalized(self, task: str, arch: str, num_disks: int) -> float:
        """Execution time normalized to Active Disks at the same size."""
        base = self.sweep.elapsed(task, "active", num_disks)
        return self.sweep.elapsed(task, arch, num_disks) / base

    def render(self) -> str:
        blocks = []
        for size in self.sizes:
            rows = [
                (task,
                 f"{self.sweep.elapsed(task, 'active', size):.2f}s",
                 f"{self.normalized(task, 'cluster', size):.2f}",
                 f"{self.normalized(task, 'smp', size):.2f}")
                for task in self.tasks
            ]
            blocks.append(render_table(
                f"Figure 1({'abcd'[self.sizes.index(size)]}): "
                f"{size}-disk configurations "
                f"(normalized to Active Disks; scale={self.scale:g})",
                ("task", "active", "cluster", "smp"), rows))
        return "\n\n".join(blocks)


def run_fig1(sizes: Sequence[int] = CORE_SIZES,
             tasks: Optional[Sequence[str]] = None,
             scale: float = DEFAULT_SCALE, runner=None,
             queue: Optional[str] = None) -> Fig1Result:
    """Figure 1: all tasks on comparable configurations of all three.

    ``queue`` pins the kernel event-queue backend for every cell (the
    identity/bench machinery uses it for A/B runs); ``None`` keeps the
    process-wide default.
    """
    tasks = tuple(tasks or registered_tasks())
    specs = [
        CellSpec(task=task, arch=arch, num_disks=size, scale=scale,
                 queue=queue)
        for size in sizes
        for arch in ("active", "cluster", "smp")
        for task in tasks
    ]
    results = execute_cells(specs, runner)
    sweep = Sweep()
    for spec in specs:
        sweep.add(SweepCell(
            task=spec.task, arch=spec.arch, num_disks=spec.num_disks,
            variant="base", result=results[spec.key]))
    return Fig1Result(sweep=sweep, sizes=tuple(sizes), tasks=tasks,
                      scale=scale)


# ---------------------------------------------------------------- figure 2
@dataclass
class Fig2Result:
    """Interconnect-bandwidth study: AD & SMP at 200 vs 400 MB/s."""

    sweep: Sweep
    sizes: Tuple[int, ...]
    tasks: Tuple[str, ...]
    scale: float

    def normalized(self, task: str, arch: str, num_disks: int,
                   variant: str) -> float:
        base = self.sweep.elapsed(task, "active", num_disks, "200MB")
        return self.sweep.elapsed(task, arch, num_disks, variant) / base

    def render(self) -> str:
        blocks = []
        for size in self.sizes:
            rows = [
                (task,
                 "1.00",
                 f"{self.normalized(task, 'active', size, '400MB'):.2f}",
                 f"{self.normalized(task, 'smp', size, '200MB'):.2f}",
                 f"{self.normalized(task, 'smp', size, '400MB'):.2f}")
                for task in self.tasks
            ]
            blocks.append(render_table(
                f"Figure 2: {size}-disk configurations "
                f"(normalized to Active Disks @200 MB/s; scale={self.scale:g})",
                ("task", "200MB(A)", "400MB(A)", "200MB(S)", "400MB(S)"),
                rows))
        return "\n\n".join(blocks)


def run_fig2(sizes: Sequence[int] = (64, 128),
             tasks: Optional[Sequence[str]] = None,
             scale: float = DEFAULT_SCALE, runner=None,
             queue: Optional[str] = None) -> Fig2Result:
    """Figure 2: impact of I/O interconnect bandwidth on AD and SMP."""
    tasks = tuple(tasks or registered_tasks())
    specs = [
        CellSpec(task=task, arch=arch, num_disks=size, variant=variant,
                 scale=scale, interconnect_mb=rate_mb, queue=queue)
        for size in sizes
        for rate_mb, variant in ((200, "200MB"), (400, "400MB"))
        for task in tasks
        for arch in ("active", "smp")
    ]
    results = execute_cells(specs, runner)
    sweep = Sweep()
    for spec in specs:
        sweep.add(SweepCell(spec.task, spec.arch, spec.num_disks,
                            spec.variant, results[spec.key]))
    return Fig2Result(sweep=sweep, sizes=tuple(sizes), tasks=tasks,
                      scale=scale)


# ---------------------------------------------------------------- figure 3
@dataclass
class Fig3Result:
    """Sort breakdown on Active Disks: per-phase busy/idle fractions."""

    results: Dict[Tuple[int, str], RunResult]
    sizes: Tuple[int, ...]
    scale: float

    def breakdown(self, num_disks: int, variant: str = "base") -> Dict:
        """Figure 3(b)-style fractions of the sort (first) phase."""
        result = self.results[(num_disks, variant)]
        phase = result.phases[0]
        return phase.fractions()

    def phase_elapsed(self, num_disks: int,
                      variant: str = "base") -> Tuple[float, float]:
        result = self.results[(num_disks, variant)]
        return tuple(p.elapsed for p in result.phases)

    def render(self) -> str:
        rows = []
        for size in self.sizes:
            for variant in ("base", "fastdisk", "fastio"):
                result = self.results[(size, variant)]
                p1, p2 = result.phases
                f1 = p1.fractions()
                f2 = p2.fractions()
                rows.append((
                    f"{size}/{variant}",
                    f"{result.elapsed:.2f}s",
                    f"{f1.get('partitioner', 0):.2f}",
                    f"{f1.get('append', 0):.2f}",
                    f"{f1.get('sort', 0):.2f}",
                    f"{f1.get('idle', 0):.2f}",
                    f"{f2.get('merge', 0):.2f}",
                    f"{f2.get('idle', 0):.2f}",
                ))
        return render_table(
            f"Figure 3: sort breakdown on Active Disks (scale={self.scale:g})",
            ("config", "total", "P1:part", "P1:append", "P1:sort",
             "P1:idle", "P2:merge", "P2:idle"),
            rows)


def run_fig3(sizes: Sequence[int] = CORE_SIZES,
             scale: float = DEFAULT_SCALE, runner=None,
             queue: Optional[str] = None) -> Fig3Result:
    """Figure 3: sort phases, plus Fast Disk and Fast I/O variants."""
    variant_fields = {
        "base": {},
        "fastdisk": {"drive": "HITACHI_DK3E1T91"},
        "fastio": {"interconnect_mb": 400},
    }
    specs = [
        CellSpec(task="sort", arch="active", num_disks=size,
                 variant=variant, scale=scale, queue=queue, **fields)
        for size in sizes
        for variant, fields in variant_fields.items()
    ]
    executed = execute_cells(specs, runner)
    results: Dict[Tuple[int, str], RunResult] = {
        (spec.num_disks, spec.variant): executed[spec.key]
        for spec in specs
    }
    return Fig3Result(results=results, sizes=tuple(sizes), scale=scale)


# ---------------------------------------------------------------- figure 4
@dataclass
class Fig4Result:
    """Memory study: % improvement over the 32 MB baseline."""

    elapsed: Dict[Tuple[str, int, int], float]   # (task, disks, MB) -> s
    sizes: Tuple[int, ...]
    tasks: Tuple[str, ...]
    memories_mb: Tuple[int, ...]
    scale: float

    def improvement(self, task: str, num_disks: int,
                    memory_mb: int = 64) -> float:
        """Percent improvement of ``memory_mb`` over 32 MB."""
        base = self.elapsed[(task, num_disks, 32)]
        other = self.elapsed[(task, num_disks, memory_mb)]
        return 100.0 * (base - other) / base

    def render(self) -> str:
        blocks = []
        for memory in self.memories_mb:
            if memory == 32:
                continue
            rows = [
                tuple([task] + [f"{self.improvement(task, size, memory):.1f}%"
                                for size in self.sizes])
                for task in self.tasks
            ]
            blocks.append(render_table(
                f"Figure 4: % improvement from {memory} MB disk memory "
                f"(vs 32 MB; scale={self.scale:g})",
                tuple(["task"] + [f"{s} disks" for s in self.sizes]),
                rows))
        return "\n\n".join(blocks)


def run_fig4(sizes: Sequence[int] = CORE_SIZES,
             tasks: Optional[Sequence[str]] = None,
             memories_mb: Sequence[int] = (32, 64, 128),
             scale: float = DEFAULT_SCALE, runner=None,
             queue: Optional[str] = None) -> Fig4Result:
    """Figure 4: impact of Active Disk memory (32/64/128 MB)."""
    tasks = tuple(tasks or registered_tasks())
    specs = [
        CellSpec(task=task, arch="active", num_disks=size,
                 variant=f"mem{memory}", scale=scale, memory_mb=memory,
                 queue=queue)
        for size in sizes
        for memory in memories_mb
        for task in tasks
    ]
    results = execute_cells(specs, runner)
    elapsed: Dict[Tuple[str, int, int], float] = {
        (spec.task, spec.num_disks, spec.memory_mb):
            results[spec.key].elapsed
        for spec in specs
    }
    return Fig4Result(elapsed=elapsed, sizes=tuple(sizes), tasks=tasks,
                      memories_mb=tuple(memories_mb), scale=scale)


# ---------------------------------------------------------------- figure 5
@dataclass
class Fig5Result:
    """Communication-architecture study: via-front-end vs direct."""

    elapsed: Dict[Tuple[str, int, str], float]  # (task, disks, mode) -> s
    sizes: Tuple[int, ...]
    tasks: Tuple[str, ...]
    scale: float

    def slowdown(self, task: str, num_disks: int) -> float:
        direct = self.elapsed[(task, num_disks, "direct")]
        restricted = self.elapsed[(task, num_disks, "restricted")]
        return restricted / direct

    def render(self) -> str:
        rows = [
            tuple([task] + [f"{self.slowdown(task, size):.2f}"
                            for size in self.sizes])
            for task in self.tasks
        ]
        return render_table(
            "Figure 5: slowdown when all communication passes through "
            f"the front-end (scale={self.scale:g})",
            tuple(["task"] + [f"{s} disks" for s in self.sizes]),
            rows)


def run_fig5(sizes: Sequence[int] = (32, 64, 128),
             tasks: Optional[Sequence[str]] = None,
             scale: float = DEFAULT_SCALE, runner=None,
             queue: Optional[str] = None) -> Fig5Result:
    """Figure 5: impact of restricting direct disk-to-disk communication."""
    tasks = tuple(tasks or registered_tasks())
    specs = [
        CellSpec(task=task, arch="active", num_disks=size, variant=mode,
                 scale=scale, restricted=(mode == "restricted"),
                 queue=queue)
        for size in sizes
        for task in tasks
        for mode in ("direct", "restricted")
    ]
    results = execute_cells(specs, runner)
    elapsed: Dict[Tuple[str, int, str], float] = {
        (spec.task, spec.num_disks, spec.variant):
            results[spec.key].elapsed
        for spec in specs
    }
    return Fig5Result(elapsed=elapsed, sizes=tuple(sizes), tasks=tasks,
                      scale=scale)
