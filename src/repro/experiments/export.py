"""Machine-readable export of experiment results (CSV / JSON).

Every figure-result object renders human-readable tables; downstream
analysis (plotting, regression tracking) wants structured data. This
module flattens results to row dictionaries and serializes them.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from .figures import Fig1Result, Fig2Result, Fig3Result, Fig4Result, Fig5Result

__all__ = ["fig1_rows", "fig2_rows", "fig3_rows", "fig4_rows",
           "fig5_rows", "rows_to_csv", "rows_to_json"]

Row = Dict[str, object]


def fig1_rows(result: Fig1Result) -> List[Row]:
    rows: List[Row] = []
    for size in result.sizes:
        for task in result.tasks:
            for arch in ("active", "cluster", "smp"):
                rows.append({
                    "figure": "fig1", "task": task, "arch": arch,
                    "disks": size, "scale": result.scale,
                    "elapsed_s": result.sweep.elapsed(task, arch, size),
                    "normalized": result.normalized(task, arch, size),
                })
    return rows


def fig2_rows(result: Fig2Result) -> List[Row]:
    rows: List[Row] = []
    for size in result.sizes:
        for task in result.tasks:
            for arch in ("active", "smp"):
                for variant in ("200MB", "400MB"):
                    rows.append({
                        "figure": "fig2", "task": task, "arch": arch,
                        "disks": size, "variant": variant,
                        "scale": result.scale,
                        "elapsed_s": result.sweep.elapsed(
                            task, arch, size, variant),
                        "normalized": result.normalized(
                            task, arch, size, variant),
                    })
    return rows


def fig3_rows(result: Fig3Result) -> List[Row]:
    rows: List[Row] = []
    for (size, variant), run in result.results.items():
        for phase in run.phases:
            fractions = phase.fractions()
            for bucket, fraction in fractions.items():
                rows.append({
                    "figure": "fig3", "disks": size, "variant": variant,
                    "phase": phase.name, "bucket": bucket,
                    "fraction": fraction, "phase_elapsed_s": phase.elapsed,
                    "scale": result.scale,
                })
    return rows


def fig4_rows(result: Fig4Result) -> List[Row]:
    rows: List[Row] = []
    for (task, disks, memory), elapsed in result.elapsed.items():
        row: Row = {
            "figure": "fig4", "task": task, "disks": disks,
            "memory_mb": memory, "elapsed_s": elapsed,
            "scale": result.scale,
        }
        if memory != 32:
            row["improvement_pct"] = result.improvement(
                task, disks, memory)
        rows.append(row)
    return rows


def fig5_rows(result: Fig5Result) -> List[Row]:
    rows: List[Row] = []
    for (task, disks, mode), elapsed in result.elapsed.items():
        rows.append({
            "figure": "fig5", "task": task, "disks": disks,
            "mode": mode, "elapsed_s": elapsed,
            "slowdown": result.slowdown(task, disks),
            "scale": result.scale,
        })
    return rows


def rows_to_csv(rows: List[Row]) -> str:
    """Serialize rows to CSV text (union of all keys as header)."""
    if not rows:
        return ""
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def rows_to_json(rows: List[Row]) -> str:
    """Serialize rows to a JSON array."""
    return json.dumps(rows, indent=2, sort_keys=True)
