"""Sweep cells and the process-isolated worker pool that runs them.

A :class:`CellSpec` is a JSON-serializable description of one simulation
— (task, architecture, disk count, scale) plus the variant knobs the
figure drivers use (memory, interconnect rate, restricted routing,
drive model, injected drive failure). It is the unit the journal
records, the worker processes receive, and the config hash covers.

:func:`run_cells` executes a batch of specs. With ``jobs == 1`` and no
timeout it runs them inline, in order, in the calling process — the
exact code path the figure drivers always had, so default results stay
byte-identical. With ``jobs > 1`` (or a timeout) each simulation runs in
its own subprocess, so a crash (segfault, OOM kill) or a hang in one
pathological configuration is contained: the supervisor reaps the
worker, retries with exponential backoff up to ``retries`` times, and
finally *quarantines* the cell and moves on rather than sinking the
sweep.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence

from ..arch import RunResult
from .artifacts import result_from_dict, result_to_dict

__all__ = ["CellSpec", "CellOutcome", "run_cells", "run_cell",
           "build_config", "drain_pool"]

#: Named drive models a spec may reference (JSON-friendly indirection).
DRIVE_NAMES = ("SEAGATE_ST39102", "HITACHI_DK3E1T91")

MB = 1_000_000


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell: everything needed to reproduce a single run."""

    task: str
    arch: str
    num_disks: int
    variant: str = "base"
    scale: float = 1.0 / 16.0
    memory_mb: Optional[int] = None
    interconnect_mb: Optional[float] = None
    restricted: bool = False
    fibreswitch_segments: Optional[int] = None
    drive: Optional[str] = None
    fault_disk: Optional[int] = None
    fault_at: Optional[float] = None
    fault_seed: int = 0
    audit: bool = False
    #: Event-queue backend override for the cell's simulator(s); None
    #: defers to the process-wide default. Part of the config hash
    #: only when set, so existing journals keep their keys.
    queue: Optional[str] = None
    #: Traffic cells: a :class:`repro.traffic.TrafficConfig` encoding.
    #: ``task`` is "traffic" by convention; ``run_cell`` dispatches to
    #: the open-loop engine instead of a single-query simulation.
    traffic: Optional[Dict] = field(default=None, hash=False)

    @property
    def key(self) -> str:
        """Journal key; unique within a sweep by construction."""
        return f"{self.task}:{self.arch}:{self.num_disks}:{self.variant}"

    def to_dict(self) -> Dict:
        out = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                out[spec_field.name] = value
        out.update(task=self.task, arch=self.arch,
                   num_disks=self.num_disks, variant=self.variant,
                   scale=self.scale)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "CellSpec":
        valid = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown CellSpec fields: {', '.join(sorted(unknown))}")
        return cls(**data)

    def config_hash(self) -> str:
        """Stable digest of the configuration this spec implies."""
        import hashlib
        import json
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_config(spec: CellSpec):
    """Materialize the :class:`ArchConfig` a spec describes."""
    from .runner import config_for

    overrides = {}
    if spec.drive is not None:
        if spec.drive not in DRIVE_NAMES:
            raise ValueError(f"unknown drive {spec.drive!r}; "
                             f"pick one of {DRIVE_NAMES}")
        from .. import disk
        overrides["drive"] = getattr(disk, spec.drive)
    config = config_for(spec.arch, spec.num_disks, **overrides)
    if spec.memory_mb is not None:
        config = config.with_memory(spec.memory_mb * MB)
    if spec.interconnect_mb is not None:
        config = config.with_interconnect(spec.interconnect_mb * MB)
    if spec.fibreswitch_segments is not None:
        config = config.with_fibreswitch(spec.fibreswitch_segments)
    if spec.restricted:
        config = config.restricted()
    return config


def run_cell(spec: CellSpec, invariants=None,
             debug: bool = False) -> RunResult:
    """Run one cell to completion in the current process.

    ``spec.audit`` arms a fresh
    :class:`~repro.invariants.InvariantAuditor` for the run (unless the
    caller passes its own via ``invariants``); a broken conservation law
    then raises :class:`~repro.invariants.InvariantViolation`, which the
    pool quarantines immediately — a deterministic modelling defect is
    not worth retrying. ``debug=True`` selects the checked kernel loop.
    """
    from .runner import run_task

    if spec.traffic is not None:
        from ..sim.queues import queue_override
        from ..traffic.driver import run_traffic_cell
        if spec.queue is not None:
            with queue_override(spec.queue):
                return run_traffic_cell(spec)
        return run_traffic_cell(spec)
    if invariants is None and spec.audit:
        from ..invariants import InvariantAuditor
        invariants = InvariantAuditor()
    fault_plan = None
    if spec.fault_disk is not None:
        from ..faults import FaultPlan, FaultSpec
        fault_plan = FaultPlan.of(
            FaultSpec(kind="drive_failure", target=f"disk.{spec.fault_disk}",
                      at=spec.fault_at or 0.0),
            seed=spec.fault_seed)
    return run_task(build_config(spec), spec.task, spec.scale,
                    fault_plan=fault_plan, invariants=invariants,
                    debug=debug, queue_backend=spec.queue)


@dataclass
class CellOutcome:
    """Terminal outcome of one cell after all attempts."""

    spec: CellSpec
    status: str                     # "done" | "quarantined"
    attempts: int
    result: Optional[RunResult] = None
    error: Optional[str] = None
    violation: Optional[Dict] = None
    oom: bool = False               # quarantined for busting a memory budget
    failures: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.spec.key


# ----------------------------------------------------------- subprocess
def _apply_memory_budget(budget_mb: int) -> bool:
    """Cap this process's address space at ``budget_mb`` megabytes.

    Returns False where RLIMIT_AS is unavailable (non-POSIX platforms);
    the budget then degrades to unenforced rather than failing the cell.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - windows
        return False
    budget = budget_mb * MB
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    if hard != resource.RLIM_INFINITY:
        budget = min(budget, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (budget, hard))
    except (ValueError, OSError):  # pragma: no cover - exotic hard limits
        return False
    return True


def _worker_main(cell_fn, spec_dict: Dict, conn,
                 memory_budget_mb: Optional[int] = None) -> None:
    """Entry point of one worker subprocess: run one cell, pipe it back."""
    from ..invariants import InvariantViolation
    if memory_budget_mb is not None:
        _apply_memory_budget(memory_budget_mb)
    try:
        result = cell_fn(CellSpec.from_dict(spec_dict))
        conn.send(("ok", result_to_dict(result)))
    except MemoryError:
        # The allocation that tripped RLIMIT_AS is gone once the frame
        # unwinds; keep this handler allocation-light all the same. A
        # MemoryError with no budget set is host pressure, not a budget
        # bust — report it as an ordinary (retryable) error.
        kind = "oom" if memory_budget_mb is not None else "error"
        message = (f"cell exceeded its {memory_budget_mb} MB memory budget"
                   if memory_budget_mb is not None
                   else "MemoryError outside any configured budget")
        try:
            conn.send((kind, message))
        except BrokenPipeError:  # pragma: no cover - supervisor died
            pass
    except InvariantViolation as violation:
        try:
            conn.send(("violation", {
                "report": violation.report(),
                "error": traceback.format_exc(limit=20),
            }))
        except BrokenPipeError:  # pragma: no cover - supervisor died
            pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20)))
        except BrokenPipeError:  # pragma: no cover - supervisor died
            pass
    finally:
        conn.close()


def _mp_context(name: Optional[str] = None):
    if name is None:
        methods = multiprocessing.get_all_start_methods()
        name = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(name)


@dataclass
class _Running:
    proc: object
    conn: object
    spec: CellSpec
    attempt: int
    deadline: Optional[float]


def _reap(entry: _Running) -> None:
    """Terminate one worker, escalating to SIGKILL if it lingers."""
    if entry.proc.is_alive():
        entry.proc.terminate()
        entry.proc.join(0.5)
        if entry.proc.is_alive():  # pragma: no cover - stubborn worker
            entry.proc.kill()
            entry.proc.join(0.5)
    try:
        entry.conn.close()
    except OSError:  # pragma: no cover
        pass


def drain_pool(entries: List[_Running], *, grace: float = 0.5) -> None:
    """Drain a pool: cancel in-flight deadlines, then reap every worker.

    Used on the interrupt path (SIGINT/SIGTERM) and by service workers
    shutting down. Each entry's wall-clock deadline is cancelled *first*
    so no timeout bookkeeping fires for a cell we are already tearing
    down, then termination is two-phase and pool-wide: every live
    worker gets SIGTERM at once, the whole group shares one ``grace``
    window, and only stragglers are SIGKILLed — so Ctrl-C on a wide
    sweep exits in ~``grace`` seconds instead of serializing a
    per-worker wait.
    """
    for entry in entries:
        entry.deadline = None
        if entry.proc.is_alive():
            entry.proc.terminate()
    joined_by = time.monotonic() + grace
    for entry in entries:
        entry.proc.join(max(0.0, joined_by - time.monotonic()))
        if entry.proc.is_alive():  # pragma: no cover - stubborn worker
            entry.proc.kill()
            entry.proc.join(0.5)
        try:
            entry.conn.close()
        except OSError:  # pragma: no cover
            pass


def run_cells(specs: Sequence[CellSpec], *,
              jobs: int = 1,
              timeout: Optional[float] = None,
              retries: int = 0,
              backoff: float = 0.05,
              cell_fn: Callable[[CellSpec], RunResult] = run_cell,
              on_start: Optional[Callable[[CellSpec, int], None]] = None,
              on_attempt_failed: Optional[
                  Callable[[CellSpec, int, str, str], None]] = None,
              on_outcome: Optional[Callable[[CellOutcome], None]] = None,
              mp_context: Optional[str] = None,
              memory_budget_mb: Optional[int] = None,
              ) -> List[CellOutcome]:
    """Execute every spec, retrying and quarantining as configured.

    Callbacks fire in the supervising process, in event order:
    ``on_start(spec, attempt)`` when an attempt launches,
    ``on_attempt_failed(spec, attempt, error, kind)`` when one fails
    (``kind`` is ``"error"``, ``"timeout"``, ``"crashed"``,
    ``"violation"`` or ``"oom"``), and ``on_outcome(outcome)`` once per
    cell at its terminal state. An
    :class:`~repro.invariants.InvariantViolation` is deterministic —
    the cell is quarantined immediately, with the violation's
    structured ledger on the outcome, instead of burning retries on a
    modelling defect. ``memory_budget_mb`` caps each cell's address
    space (RLIMIT_AS, POSIX only) and forces subprocess isolation even
    at ``jobs=1``; a cell that busts the budget raises a trapped
    ``MemoryError`` in its own process and is quarantined as ``oom`` —
    rerunning the same deterministic simulation into the same budget
    would allocate the same bytes, so retrying is as pointless as for
    a violation, and the worker host stays up.
    ``KeyboardInterrupt`` (and the SIGTERM handler that re-raises as
    one) propagates out of this function after every live worker has
    been terminated — no orphan processes.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if memory_budget_mb is not None and memory_budget_mb < 1:
        raise ValueError(
            f"memory budget must be >= 1 MB, got {memory_budget_mb}")
    isolate = jobs > 1 or timeout is not None or memory_budget_mb is not None
    if not isolate:
        return _run_inline(specs, retries=retries, backoff=backoff,
                           cell_fn=cell_fn, on_start=on_start,
                           on_attempt_failed=on_attempt_failed,
                           on_outcome=on_outcome)
    return _run_pool(specs, jobs=jobs, timeout=timeout, retries=retries,
                     backoff=backoff, cell_fn=cell_fn, on_start=on_start,
                     on_attempt_failed=on_attempt_failed,
                     on_outcome=on_outcome, mp_context=mp_context,
                     memory_budget_mb=memory_budget_mb)


def _finish(outcomes: List[CellOutcome], outcome: CellOutcome,
            on_outcome) -> None:
    outcomes.append(outcome)
    if on_outcome is not None:
        on_outcome(outcome)


def _run_inline(specs, *, retries, backoff, cell_fn,
                on_start, on_attempt_failed, on_outcome):
    from ..invariants import InvariantViolation
    outcomes: List[CellOutcome] = []
    for spec in specs:
        failures: List[str] = []
        for attempt in range(retries + 1):
            if on_start is not None:
                on_start(spec, attempt)
            try:
                result = cell_fn(spec)
            except InvariantViolation as violation:
                error = traceback.format_exc(limit=20)
                failures.append(error)
                if on_attempt_failed is not None:
                    on_attempt_failed(spec, attempt, error, "violation")
                _finish(outcomes,
                        CellOutcome(spec, "quarantined", attempt + 1,
                                    error=error,
                                    violation=violation.report(),
                                    failures=failures), on_outcome)
                break
            except Exception:
                error = traceback.format_exc(limit=20)
                failures.append(error)
                if on_attempt_failed is not None:
                    on_attempt_failed(spec, attempt, error, "error")
                if attempt < retries and backoff > 0:
                    time.sleep(backoff * (2 ** attempt))
                continue
            _finish(outcomes, CellOutcome(spec, "done", attempt + 1,
                                          result=result,
                                          failures=failures), on_outcome)
            break
        else:
            _finish(outcomes, CellOutcome(spec, "quarantined", retries + 1,
                                          error=failures[-1],
                                          failures=failures), on_outcome)
    return outcomes


def _run_pool(specs, *, jobs, timeout, retries, backoff, cell_fn,
              on_start, on_attempt_failed, on_outcome, mp_context,
              memory_budget_mb=None):
    ctx = _mp_context(mp_context)
    # (spec, attempt, not_before, failures)
    queue: deque = deque((spec, 0, 0.0, []) for spec in specs)
    running: List[_Running] = []
    failures_of: Dict[str, List[str]] = {spec.key: [] for spec in specs}
    outcomes: List[CellOutcome] = []

    def attempt_failed(entry: _Running, error: str, kind: str,
                       violation: Optional[Dict] = None) -> None:
        failures = failures_of[entry.spec.key]
        failures.append(error)
        if on_attempt_failed is not None:
            on_attempt_failed(entry.spec, entry.attempt, error, kind)
        # Violations and budget busts are deterministic: retrying would
        # replay the identical simulation into the identical failure.
        if kind not in ("violation", "oom") and entry.attempt < retries:
            not_before = time.monotonic() + backoff * (2 ** entry.attempt)
            queue.append((entry.spec, entry.attempt + 1, not_before,
                          failures))
        else:
            _finish(outcomes,
                    CellOutcome(entry.spec, "quarantined",
                                entry.attempt + 1, error=error,
                                violation=violation,
                                oom=(kind == "oom"),
                                failures=list(failures)), on_outcome)

    try:
        while queue or running:
            now = time.monotonic()
            while len(running) < jobs:
                index = next((i for i, item in enumerate(queue)
                              if item[2] <= now), None)
                if index is None:
                    break
                spec, attempt, _, _ = queue[index]
                del queue[index]
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(cell_fn, spec.to_dict(), child, memory_budget_mb),
                    name=f"repro-cell-{spec.key}", daemon=True)
                if on_start is not None:
                    on_start(spec, attempt)
                proc.start()
                child.close()
                deadline = now + timeout if timeout is not None else None
                running.append(_Running(proc, parent, spec, attempt,
                                        deadline))
            if not running:
                time.sleep(0.005)
                continue
            multiprocessing.connection.wait(
                [entry.conn for entry in running], timeout=0.05)
            now = time.monotonic()
            still: List[_Running] = []
            for entry in running:
                if entry.conn.poll():
                    try:
                        kind, payload = entry.conn.recv()
                    except EOFError:
                        kind, payload = "crashed", (
                            f"worker exited without a result "
                            f"(exitcode {entry.proc.exitcode})")
                    entry.proc.join(1.0)
                    _reap(entry)
                    if kind == "ok":
                        _finish(outcomes,
                                CellOutcome(
                                    entry.spec, "done", entry.attempt + 1,
                                    result=result_from_dict(payload),
                                    failures=list(
                                        failures_of[entry.spec.key])),
                                on_outcome)
                    elif kind == "violation":
                        attempt_failed(entry, payload["error"], "violation",
                                       violation=payload["report"])
                    elif kind == "oom":
                        attempt_failed(entry, payload, "oom")
                    elif kind == "error":
                        attempt_failed(entry, payload, "error")
                    else:
                        attempt_failed(entry, payload, "crashed")
                elif not entry.proc.is_alive():
                    _reap(entry)
                    attempt_failed(
                        entry,
                        f"worker died without a result "
                        f"(exitcode {entry.proc.exitcode})", "crashed")
                elif entry.deadline is not None and now > entry.deadline:
                    _reap(entry)
                    attempt_failed(
                        entry,
                        f"cell exceeded {timeout:g}s wall-clock timeout",
                        "timeout")
                else:
                    still.append(entry)
            running = still
    finally:
        drain_pool(running)
    return outcomes
