"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_bars",
           "render_grouped_bars"]


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """A fixed-width table with a title line."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, series: dict) -> str:
    """One line per named series: ``name: v1  v2  v3``."""
    lines = [title]
    width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        cells = "  ".join(_fmt(v) for v in values)
        lines.append(f"{name.ljust(width)}  {cells}")
    return "\n".join(lines)


def render_bars(title: str, values: Dict[str, float], width: int = 40,
                unit: str = "") -> str:
    """Horizontal ASCII bars, longest = ``width`` characters.

    The paper's figures are bar charts; this renders the same data in a
    terminal. Zero/negative values print as empty bars.
    """
    lines = [title]
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(name) for name in values)
    for name, value in values.items():
        length = 0 if peak <= 0 or value <= 0 else round(
            width * value / peak)
        bar = "#" * length
        lines.append(f"{name.ljust(label_width)}  "
                     f"{bar:<{width}}  {_fmt(value)}{unit}")
    return "\n".join(lines)


def render_grouped_bars(title: str,
                        groups: Dict[str, Dict[str, float]],
                        width: int = 40, unit: str = "") -> str:
    """Bar chart with one block per group (the Figure 1/2 layout)."""
    blocks = [title]
    peak = max((value for group in groups.values()
                for value in group.values()), default=0.0)
    label_width = max((len(name) for group in groups.values()
                       for name in group), default=1)
    for group_name, values in groups.items():
        blocks.append(f"[{group_name}]")
        for name, value in values.items():
            length = 0 if peak <= 0 or value <= 0 else round(
                width * value / peak)
            blocks.append(f"  {name.ljust(label_width)}  "
                          f"{'#' * length:<{width}}  {_fmt(value)}{unit}")
    return "\n".join(blocks)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
