"""One-shot reproduction report: every table and figure in one run."""

from __future__ import annotations

import time
from typing import Optional, Sequence

from .figures import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
)
from .runner import DEFAULT_SCALE

__all__ = ["run_all"]

BANNER = """\
================================================================
 Evaluation of Active Disks for Decision Support Databases
 (HPCA 2000) — full reproduction report
 scale = {scale:g} of the paper's dataset sizes
================================================================"""


def run_all(scale: float = DEFAULT_SCALE,
            sizes: Optional[Sequence[int]] = None) -> str:
    """Run every experiment and return the full text report.

    ``sizes`` restricts the disk counts (default: the paper's
    16/32/64/128). At the default 1/32 scale this takes a few minutes.
    """
    began = time.time()
    core_sizes = tuple(sizes or (16, 32, 64, 128))
    large = tuple(s for s in core_sizes if s >= 64) or core_sizes[-1:]
    mid = tuple(s for s in core_sizes if s >= 32) or core_sizes[-1:]
    sections = [
        BANNER.format(scale=scale),
        run_table1(),
        run_table2(),
        run_fig1(sizes=core_sizes, scale=scale).render(),
        run_fig2(sizes=large, scale=scale).render(),
        run_fig3(sizes=core_sizes, scale=scale).render(),
        run_fig4(sizes=core_sizes, scale=scale).render(),
        run_fig5(sizes=mid, scale=scale).render(),
    ]
    elapsed = time.time() - began
    sections.append(f"(report generated in {elapsed:.0f}s wall time)")
    return "\n\n".join(sections)
