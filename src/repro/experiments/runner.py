"""Experiment runner: build a machine, run a task, collect results.

Every experiment driver goes through :func:`run_task`, which constructs a
fresh simulator + machine per run (simulations are single-use), and
:func:`config_for`, which maps an architecture name to its paper-default
configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..arch import (
    ActiveDiskConfig,
    ArchConfig,
    ClusterConfig,
    RunResult,
    SMPConfig,
    build_machine,
)
from ..sim import Simulator
from ..workloads import build_program

__all__ = ["ARCHITECTURES", "config_for", "run_task",
           "run_task_with_artifacts", "Sweep", "SweepCell"]

ARCHITECTURES = ("active", "cluster", "smp")

#: Default simulation scale for the experiment drivers: 1/16 of the
#: paper's dataset sizes keeps a full figure sweep in the minutes range
#: while preserving every bandwidth/compute ratio (see DESIGN.md).
DEFAULT_SCALE = 1.0 / 16.0


_CONFIG_CLASSES = {
    "active": ActiveDiskConfig,
    "cluster": ClusterConfig,
    "smp": SMPConfig,
}


def config_for(arch: str, num_disks: int, **overrides) -> ArchConfig:
    """The paper's core configuration for ``arch`` at ``num_disks``.

    ``overrides`` must name fields of that architecture's config class;
    a misspelled or foreign field raises a :class:`ValueError` listing
    the valid ones (rather than the constructor's opaque ``TypeError``).
    ``num_disks`` is its own argument, not an override.
    """
    cls = _CONFIG_CLASSES.get(arch)
    if cls is None:
        raise ValueError(
            f"unknown architecture {arch!r}; pick one of {ARCHITECTURES}")
    if overrides:
        valid = sorted(f.name for f in dataclasses.fields(cls)
                       if f.name != "num_disks")
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} field(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"valid fields: {', '.join(valid)}")
    return cls(num_disks=num_disks, **overrides)


def run_task(config: ArchConfig, task: str,
             scale: float = DEFAULT_SCALE,
             telemetry=None, fault_plan=None,
             fault_seed: Optional[int] = None,
             invariants=None, debug: bool = False,
             queue_backend: Optional[str] = None) -> RunResult:
    """Simulate ``task`` on a fresh machine built from ``config``.

    Pass a fresh :class:`~repro.telemetry.Telemetry` hub to record a
    structured trace of the run: it is installed on the simulator
    *before* the machine is built, so every component registers its
    probes. The same hub also gets ``task``/``arch``/``scale`` metadata
    for the exporters.

    Pass a :class:`~repro.faults.FaultPlan` to run in degraded mode: the
    injector is installed before the machine is built (so components
    register their fault ports), and the run's fault counters are merged
    into :attr:`RunResult.extras`. ``fault_seed`` overrides the plan's
    own seed; identical (plan, seed) pairs replay identical timelines.

    Pass an armed :class:`~repro.invariants.InvariantAuditor` (or enter
    the :func:`repro.invariants.armed` context, which makes every
    ``run_task`` build its own) to audit the run's conservation laws:
    the hub is installed before the machine is built so every component
    self-registers, and any broken ledger raises a structured
    :class:`~repro.invariants.InvariantViolation`. ``debug=True`` runs
    the checked kernel loop instead of the fast one (same simulation,
    more per-event validation).

    ``queue_backend`` pins the kernel's event-queue backend for this
    run (``"heap"`` or ``"calendar"``); ``None`` defers to the usual
    resolution (override context > ``REPRO_SIM_QUEUE`` > default).
    """
    sim = Simulator(debug=debug, queue=queue_backend)
    if invariants is None:
        from ..invariants import default_auditor
        invariants = default_auditor()
    if invariants is not None:
        invariants.install(sim)
    if telemetry is not None:
        telemetry.install(sim)
        telemetry.meta.update({
            "task": task,
            "arch": config.arch,
            "num_disks": config.num_disks,
            "scale": scale,
        })
    injector = None
    if fault_plan is not None:
        from ..faults import FaultInjector
        injector = FaultInjector(fault_plan, seed=fault_seed)
        injector.install(sim)
    machine = build_machine(sim, config)
    program = build_program(task, config, scale)
    result = machine.run(program)
    if injector is not None:
        result.extras.update(
            {key: float(value)
             for key, value in sorted(injector.counters.items())})
    return result


def run_task_with_artifacts(config: ArchConfig, task: str,
                            directory: str,
                            scale: float = DEFAULT_SCALE,
                            sample_interval: Optional[float] = 0.25,
                            prefix: Optional[str] = None) -> RunResult:
    """Run a task with telemetry and write trace/metrics/summary files.

    Artifacts land in ``directory`` as ``{prefix}.trace.json``,
    ``{prefix}.metrics.json`` and ``{prefix}.summary.txt``; the default
    prefix is ``{task}-{arch}-{num_disks}``.
    """
    from ..telemetry import Telemetry, write_artifacts

    telemetry = Telemetry(sample_interval=sample_interval)
    result = run_task(config, task, scale, telemetry=telemetry)
    if prefix is None:
        prefix = f"{task}-{config.arch}-{config.num_disks}"
    write_artifacts(telemetry, directory, prefix=prefix)
    return result


@dataclass
class SweepCell:
    """One (task, config) cell of a sweep."""

    task: str
    arch: str
    num_disks: int
    variant: str
    result: RunResult

    @property
    def elapsed(self) -> float:
        return self.result.elapsed


@dataclass
class Sweep:
    """A collection of runs, indexable by (task, arch, disks, variant)."""

    cells: List[SweepCell] = field(default_factory=list)

    def add(self, cell: SweepCell) -> None:
        self.cells.append(cell)

    def get(self, task: str, arch: str, num_disks: int,
            variant: str = "base") -> SweepCell:
        for cell in self.cells:
            if (cell.task == task and cell.arch == arch
                    and cell.num_disks == num_disks
                    and cell.variant == variant):
                return cell
        raise KeyError(
            f"no cell ({task}, {arch}, {num_disks}, {variant}) in sweep")

    def elapsed(self, task: str, arch: str, num_disks: int,
                variant: str = "base") -> float:
        return self.get(task, arch, num_disks, variant).elapsed

    def tasks(self) -> Tuple[str, ...]:
        seen = []
        for cell in self.cells:
            if cell.task not in seen:
                seen.append(cell.task)
        return tuple(seen)
