"""Parameter-sensitivity sweeps over any configuration field.

The paper studies three design axes (interconnect, memory, communication
architecture) by hand. This framework generalizes that: sweep any
configuration attribute across values, measure one task, and report
normalized elasticities — so new design questions ("what if the embedded
CPU were 400 MHz?", "what about 512 KB requests?") are one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Sequence, Tuple

from ..arch.config import ArchConfig
from .report import render_table
from .runner import DEFAULT_SCALE, run_task

__all__ = ["SensitivityResult", "sweep_parameter"]


@dataclass(frozen=True)
class SensitivityResult:
    """Elapsed time as a function of one swept parameter."""

    task: str
    arch: str
    parameter: str
    points: Tuple[Tuple[Any, float], ...]   # (value, elapsed)

    @property
    def baseline(self) -> float:
        return self.points[0][1]

    def speedups(self) -> List[Tuple[Any, float]]:
        """(value, baseline/elapsed) per point — higher is faster."""
        return [(value, self.baseline / elapsed)
                for value, elapsed in self.points]

    def elasticity(self) -> float:
        """Relative speed gain per relative parameter increase.

        Computed between the first and last numeric points:
        ``(d speed / speed) / (d param / param)``. 1.0 means the task
        scales perfectly with the parameter; ~0 means insensitive.
        Raises ``TypeError`` for non-numeric parameters.
        """
        first_value, first_elapsed = self.points[0]
        last_value, last_elapsed = self.points[-1]
        if not all(isinstance(v, (int, float))
                   for v in (first_value, last_value)):
            raise TypeError(
                f"elasticity needs numeric values for {self.parameter!r}")
        if last_value == first_value:
            return 0.0
        speed_gain = first_elapsed / last_elapsed - 1.0
        param_gain = last_value / first_value - 1.0
        return speed_gain / param_gain

    def render(self) -> str:
        rows = [(value, f"{elapsed:.3f}s",
                 f"{self.baseline / elapsed:.2f}x")
                for value, elapsed in self.points]
        return render_table(
            f"Sensitivity of {self.task} on {self.arch} to "
            f"{self.parameter}",
            (self.parameter, "elapsed", "speedup"),
            rows)


def sweep_parameter(config: ArchConfig, task: str, parameter: str,
                    values: Sequence[Any],
                    scale: float = DEFAULT_SCALE) -> SensitivityResult:
    """Run ``task`` with ``parameter`` set to each value in turn.

    ``parameter`` must be a field of the configuration dataclass; the
    first value is the baseline the speedups are normalized against.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if not hasattr(config, parameter):
        raise AttributeError(
            f"{type(config).__name__} has no field {parameter!r}")
    points = []
    for value in values:
        variant = replace(config, **{parameter: value})
        points.append((value, run_task(variant, task, scale).elapsed))
    return SensitivityResult(task=task, arch=config.arch,
                             parameter=parameter, points=tuple(points))
