"""Reproduction scorecard: every paper claim checked in one run.

Each :class:`Claim` carries the paper's published band and a measurement
function; :func:`run_scorecard` evaluates all of them at a given scale
and renders a pass/fail table. This is the acceptance-test suite
(tests/test_paper_claims.py) repackaged as a user-facing artifact:
``python -m repro scorecard``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch import ActiveDiskConfig
from ..arch.costs import cost_table
from .report import render_table
from .runner import config_for, run_task

__all__ = ["Claim", "ClaimResult", "paper_claims", "run_scorecard"]

MB = 1_000_000


@dataclass(frozen=True)
class Claim:
    """One published claim: a measurement and the band it must land in."""

    ref: str                   # where the paper states it
    statement: str
    low: float
    high: float
    measure: Callable[[float], float]    # scale -> measured value
    unit: str = "x"


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float

    @property
    def passed(self) -> bool:
        return self.claim.low <= self.measured <= self.claim.high


def _ratio(task: str, disks: int, arch: str = "smp"):
    def measure(scale: float) -> float:
        base = run_task(config_for("active", disks), task, scale).elapsed
        other = run_task(config_for(arch, disks), task, scale).elapsed
        return other / base
    return measure


def _memory_improvement(task: str, disks: int):
    def measure(scale: float) -> float:
        base = run_task(ActiveDiskConfig(num_disks=disks), task,
                        scale).elapsed
        more = run_task(
            ActiveDiskConfig(num_disks=disks).with_memory(64 * MB),
            task, scale).elapsed
        return 100.0 * (base - more) / base
    return measure


def _restricted_slowdown(task: str, disks: int):
    def measure(scale: float) -> float:
        direct = run_task(ActiveDiskConfig(num_disks=disks), task,
                          scale).elapsed
        relayed = run_task(
            ActiveDiskConfig(num_disks=disks).restricted(), task,
            scale).elapsed
        return relayed / direct
    return measure


def _sort_idle(disks: int):
    def measure(scale: float) -> float:
        result = run_task(ActiveDiskConfig(num_disks=disks), "sort",
                          scale)
        return 100.0 * result.phases[0].fractions()["idle"]
    return measure


def _price_ratio(_scale: float) -> float:
    rows = cost_table(64)
    return sum(ratio for _, _, _, ratio in rows) / len(rows)


def paper_claims() -> List[Claim]:
    """The claims the scorecard checks (bands widened ~20 % for model
    noise around the paper's point values)."""
    return [
        Claim("Table 1", "64-node AD price ~ half the cluster's",
              0.35, 0.55, _price_ratio, unit=""),
        Claim("Fig 1 (32)", "SMP 1.4-2.4x slower at 32 disks (sort)",
              1.2, 2.6, _ratio("sort", 32)),
        Claim("Fig 1 (128)", "select: SMP 8.5-9.5x slower at 128 disks",
              6.0, 13.0, _ratio("select", 128)),
        Claim("Fig 1 (128)", "sort: SMP 4-6x slower at 128 disks",
              3.0, 7.0, _ratio("sort", 128)),
        Claim("Fig 1 (128)", "group-by outlier: cluster >1.5x slower",
              1.5, 10.0, _ratio("groupby", 128, arch="cluster")),
        Claim("Fig 3(b)", "sort P1 idle small at 64 disks (%)",
              0.0, 30.0, _sort_idle(64), unit="%"),
        Claim("Fig 3(b)", "sort P1 idle dominates at 128 disks (%)",
              45.0, 100.0, _sort_idle(128), unit="%"),
        Claim("Fig 4", "dcube ~35% gain from 64 MB at 16 disks (%)",
              25.0, 45.0, _memory_improvement("dcube", 16), unit="%"),
        Claim("Fig 4", "sort <8% gain from 64 MB at 16 disks (%)",
              -2.0, 8.0, _memory_improvement("sort", 16), unit="%"),
        Claim("Fig 5", "sort up to ~5x slower via front-end (128)",
              3.0, 5.5, _restricted_slowdown("sort", 128)),
        Claim("Fig 5", "select unaffected by front-end routing (64)",
              0.95, 1.05, _restricted_slowdown("select", 64)),
    ]


def run_scorecard(scale: float = 1 / 64,
                  claims: Optional[Sequence[Claim]] = None
                  ) -> Tuple[List[ClaimResult], str]:
    """Evaluate all claims; returns (results, rendered table)."""
    results = [ClaimResult(claim=claim, measured=claim.measure(scale))
               for claim in (claims or paper_claims())]
    rows = [
        (r.claim.ref, r.claim.statement,
         f"{r.claim.low:g}-{r.claim.high:g}{r.claim.unit}",
         f"{r.measured:.2f}{r.claim.unit}",
         "PASS" if r.passed else "FAIL")
        for r in results
    ]
    passed = sum(r.passed for r in results)
    table = render_table(
        f"Reproduction scorecard: {passed}/{len(results)} claims pass "
        f"(scale {scale:g})",
        ("ref", "claim", "band", "measured", "verdict"),
        rows)
    return results, table
