"""The sweep journal: an append-only JSONL record of sweep progress.

Every cell of a sweep moves through a tiny state machine —

    pending -> running -> done
                       -> failed (attempt n; retried)
                       -> quarantined (retries exhausted; sweep continues)

— and the journal records each transition as one JSON line, flushed and
fsync'd at the moment it happens. Because the file is append-only and
every line is self-contained, a journal is valid after *any* crash: a
torn final line (the write the crash interrupted) is detected and
ignored on load, and the fold over the surviving lines reconstructs the
exact sweep state.

``pending`` records carry the cell's full :class:`CellSpec` encoding and
a hash of the configuration it implies, so a journal alone is enough to
resume a sweep (``repro resume <journal>``): completed cells whose
config hash still matches are reloaded from their cached
:class:`RunResult` (bit-identical — see :mod:`.artifacts`), everything
else is re-run. ``sweep`` records carry driver metadata (figure name,
sizes, scale) so the CLI can re-dispatch the original driver.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SweepJournal", "CellState", "STATUSES"]

#: Legal cell statuses, in lifecycle order.
STATUSES = ("pending", "running", "done", "failed", "quarantined")


@dataclass
class CellState:
    """Folded state of one cell after replaying its journal records."""

    key: str
    status: str = "pending"
    spec: Optional[Dict] = None
    config_hash: Optional[str] = None
    attempt: int = 0
    result: Optional[Dict] = None
    error: Optional[str] = None
    violation: Optional[Dict] = None
    failures: List[str] = field(default_factory=list)


class SweepJournal:
    """Append-only JSONL journal of one sweep's cell lifecycle."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.meta: Dict = {}
        self.cells: Dict[str, CellState] = {}
        self.torn_lines = 0
        self._handle = None

    # ------------------------------------------------------------- load
    @classmethod
    def load(cls, path: str) -> "SweepJournal":
        """Open ``path``, replaying any existing records.

        Unparseable lines are tolerated only at the very end of the file
        (a write torn by a crash); garbage earlier in the journal raises,
        because it means the file is not one of ours.
        """
        journal = cls(path)
        if os.path.exists(journal.path):
            with open(journal.path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
            # A well-formed journal ends with "\n", so the final split
            # element is empty; anything else is a torn tail.
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if index >= len(lines) - 2:
                        journal.torn_lines += 1
                        continue
                    raise ValueError(
                        f"{journal.path}:{index + 1}: corrupt journal "
                        f"record (not at end of file)")
                journal._fold(record)
        return journal

    def _fold(self, record: Dict) -> None:
        kind = record.get("kind")
        if kind == "sweep":
            self.meta.update(record.get("meta", {}))
            return
        if kind != "cell":
            return  # unknown kinds are forward-compatible noise
        key = record["key"]
        status = record.get("status")
        if status not in STATUSES:
            raise ValueError(f"{self.path}: bad status {status!r} "
                             f"for cell {key!r}")
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellState(key=key)
        cell.status = status
        if record.get("spec") is not None:
            cell.spec = record["spec"]
        if record.get("config_hash") is not None:
            cell.config_hash = record["config_hash"]
        if record.get("attempt") is not None:
            cell.attempt = record["attempt"]
        if status == "done":
            cell.result = record.get("result")
            cell.error = None
            cell.violation = None
        elif status in ("failed", "quarantined"):
            cell.error = record.get("error")
            if record.get("violation") is not None:
                cell.violation = record["violation"]
            if record.get("error"):
                cell.failures.append(record["error"])

    # ----------------------------------------------------------- append
    def _trim_torn_tail(self) -> None:
        """Drop a partial final line (a crash-torn write) before appending.

        Load already ignores the torn fragment; trimming it keeps the
        next appended record from concatenating onto it.
        """
        try:
            if os.path.getsize(self.path) == 0:
                return
        except OSError:
            return
        with open(self.path, "rb+") as handle:
            data = handle.read()
            if data.endswith(b"\n"):
                return
            handle.truncate(data.rfind(b"\n") + 1)

    def _append(self, record: Dict) -> None:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._trim_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._fold(record)

    def note_sweep(self, meta: Dict) -> None:
        """Record driver metadata (figure, sizes, scale) for resume."""
        self._append({"kind": "sweep", "meta": meta})

    def note_cell(self, key: str, status: str, *, spec: Optional[Dict] = None,
                  config_hash: Optional[str] = None,
                  attempt: Optional[int] = None,
                  result: Optional[Dict] = None,
                  error: Optional[str] = None,
                  violation: Optional[Dict] = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"bad status {status!r}")
        record: Dict = {"kind": "cell", "key": key, "status": status}
        if spec is not None:
            record["spec"] = spec
        if config_hash is not None:
            record["config_hash"] = config_hash
        if attempt is not None:
            record["attempt"] = attempt
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        if violation is not None:
            record["violation"] = violation
        self._append(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- queries
    def done(self) -> Dict[str, CellState]:
        return {key: cell for key, cell in self.cells.items()
                if cell.status == "done"}

    def incomplete(self) -> Dict[str, CellState]:
        """Cells not terminally done: pending/running/failed/quarantined.

        ``running`` means the recording process died mid-cell; on resume
        those cells are simply re-run.
        """
        return {key: cell for key, cell in self.cells.items()
                if cell.status != "done"}

    def violated(self) -> Dict[str, CellState]:
        """Cells whose latest failure was an invariant violation."""
        return {key: cell for key, cell in self.cells.items()
                if cell.violation is not None}

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for cell in self.cells.values():
            out[cell.status] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in STATUSES if counts[s]]
        return f"{self.path}: " + (", ".join(parts) or "empty")
