"""The sweep journal: an append-only JSONL record of sweep progress.

Every cell of a sweep moves through a tiny state machine —

    pending -> running -> done
                       -> failed (attempt n; retried)
                       -> quarantined (retries exhausted; sweep continues)

— and the journal records each transition as one JSON line, flushed and
fsync'd at the moment it happens. Because the file is append-only and
every line is self-contained, a journal is valid after *any* crash: a
torn final line (the write the crash interrupted) is detected and
ignored on load, and the fold over the surviving lines reconstructs the
exact sweep state.

``pending`` records carry the cell's full :class:`CellSpec` encoding and
a hash of the configuration it implies, so a journal alone is enough to
resume a sweep (``repro resume <journal>``): completed cells whose
config hash still matches are reloaded from their cached
:class:`RunResult` (bit-identical — see :mod:`.artifacts`), everything
else is re-run. ``sweep`` records carry driver metadata (figure name,
sizes, scale) so the CLI can re-dispatch the original driver.

Journals written by the distributed sweep service (``repro serve``, see
``docs/SERVICE.md``) additionally attribute cell transitions to the
worker that ran them (``worker=`` on ``running``/``done`` records) and
interleave ``service`` event records — heartbeat losses, reassignments
— which fold into :attr:`SweepJournal.service_events` and the
per-worker queries below. A service journal is still a plain sweep
journal: ``repro resume`` and ``repro doctor --journal`` both accept it.

The append-only mechanics (torn-tail tolerance, fsync'd appends) live
in :class:`AppendLog` so other persistent logs — the service's
:class:`~repro.service.jobs.JobQueue` — share the exact crash-safety
contract instead of re-implementing it. Those mechanics are
gauntlet-verified (``repro crashtest``, ``docs/DURABILITY.md``) and
harden three real failure modes:

* the parent directory is fsync'd when the file is first created, so
  a crash right after the first append cannot lose the whole journal
  to a volatile directory entry;
* every record carries a CRC32 over its canonical JSON (``crc``
  field), verified on load — a mid-file bit-flip that still parses as
  JSON is a hard error naming the file and line instead of being
  silently folded; records from older, CRC-less journals are still
  accepted;
* an append that fails with ``EIO`` is retried once on a fresh handle
  after a clean abort (any torn fragment trimmed), and an append that
  cannot be completed raises :class:`JournalWriteError` with the file
  in a well-formed state — never a half-applied record. A complete
  record whose *fsync* keeps failing is left in place (it is valid,
  just not guaranteed durable) and the error says so.

All file operations go through the pluggable IO seam
(:mod:`repro.durability.io_layer`), which is how the durability
gauntlet injects ENOSPC/EIO/short writes/fsync lies and enumerates
crash points through this exact code path.
"""

from __future__ import annotations

import errno
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..durability.io_layer import current_io

__all__ = ["AppendLog", "SweepJournal", "CellState", "STATUSES",
           "JournalWriteError", "record_crc"]

#: Legal cell statuses, in lifecycle order.
STATUSES = ("pending", "running", "done", "failed", "quarantined")


class JournalWriteError(OSError):
    """An append could not be applied; the journal is still well-formed.

    Raised after the clean-abort path ran: the handle is closed and
    any torn fragment of the failed record has been trimmed, so the
    file never holds a half-applied record. The original ``OSError``
    is chained as ``__cause__``.
    """


def record_crc(record: Dict) -> int:
    """CRC32 of a record's canonical JSON (sorted keys, no ``crc``).

    The canonical form is exactly what :meth:`AppendLog._append`
    writes, so recomputing it over a loaded record is stable: ``json``
    round-trips floats via ``repr`` and re-escapes strings
    identically.
    """
    payload = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))


class AppendLog:
    """An append-only JSONL file tolerating a crash-torn final line.

    Subclasses override :meth:`_fold` to reconstruct state from the
    record stream. Appends are flushed and fsync'd one self-contained
    line at a time, so after any crash the file is either well-formed
    or torn only in its final line — which :meth:`load` detects,
    counts in ``torn_lines``, and ignores, and which the next append
    trims so new records never concatenate onto the fragment.

    Every written record carries a ``crc`` field (CRC32 of the rest of
    the line, see :func:`record_crc`) that :meth:`load` verifies;
    records without one (pre-CRC journals) are accepted unchecked. The
    parent directory is fsync'd when the file is first created, and a
    failed append aborts cleanly — see :class:`JournalWriteError`.
    ``write_retries`` appends are retried on ``EIO`` (default one).
    """

    def __init__(self, path: str, write_retries: int = 1):
        self.path = os.fspath(path)
        self.torn_lines = 0
        self.write_retries = write_retries
        self._handle = None

    # ------------------------------------------------------------- load
    @classmethod
    def load(cls, path: str):
        """Open ``path``, replaying any existing records.

        Unparseable lines are tolerated only at the very end of the file
        (a write torn by a crash); garbage earlier in the journal raises,
        because it means the file is not one of ours.
        """
        log = cls(path)
        if os.path.exists(log.path):
            with open(log.path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
            # A well-formed journal ends with "\n", so the final split
            # element is empty; anything else is a torn tail.
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if index >= len(lines) - 2:
                        log.torn_lines += 1
                        continue
                    raise ValueError(
                        f"{log.path}:{index + 1}: corrupt journal "
                        f"record (not at end of file)")
                crc = record.pop("crc", None) if isinstance(record, dict) \
                    else None
                if crc is not None and crc != record_crc(record):
                    # A line that parses but fails its checksum is a
                    # bit-flip inside valid JSON — always a hard error,
                    # even on the final line: a torn write can never
                    # produce parseable JSON with a present-but-wrong
                    # CRC, so this is corruption, not a crash artifact.
                    raise ValueError(
                        f"{log.path}:{index + 1}: journal record CRC "
                        f"mismatch (stored {crc}, computed "
                        f"{record_crc(record)})")
                log._fold(record)
        return log

    def _fold(self, record: Dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ----------------------------------------------------------- append
    def _trim_torn_tail(self) -> None:
        """Drop a partial final line (a crash-torn write) before appending.

        Load already ignores the torn fragment; trimming it keeps the
        next appended record from concatenating onto it.
        """
        try:
            if os.path.getsize(self.path) == 0:
                return
        except OSError:
            return
        with open(self.path, "rb+") as handle:
            data = handle.read()
            if data.endswith(b"\n"):
                return
            handle.truncate(data.rfind(b"\n") + 1)

    def _ensure_open(self, io) -> None:
        if self._handle is not None:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._trim_torn_tail()
        created = not os.path.exists(self.path)
        self._handle = io.open_append(self.path)
        if created:
            # Make the new directory entry durable too: without this a
            # crash can lose the whole "durable" journal, fsync'd
            # records and all (gauntlet-verified, docs/DURABILITY.md).
            io.fsync_dir(directory or ".")

    def _abort(self, trim: bool = True) -> None:
        """Clean abort of a failed append: close, and trim any fragment."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        if trim:
            try:
                self._trim_torn_tail()
            except OSError:
                pass

    def _append(self, record: Dict) -> None:
        stamped = dict(record)
        stamped["crc"] = record_crc(record)
        # One write call per record: appends from concurrent processes
        # (coordinator + a late worker flush) land as whole lines.
        line = (json.dumps(stamped, sort_keys=True) + "\n").encode("utf-8")
        io = current_io()
        attempts = max(1, self.write_retries + 1)
        # Phase 1: land the complete line. A failed try aborts cleanly
        # (any torn fragment trimmed) so a retry — or a later appender —
        # never concatenates onto half a record.
        for attempt in range(attempts):
            try:
                self._ensure_open(io)
                io.write(self._handle, line)
                break
            except OSError as error:
                self._abort()
                if error.errno == errno.EIO and attempt + 1 < attempts:
                    continue
                raise JournalWriteError(
                    f"{self.path}: append failed ({error}); journal "
                    f"left well-formed") from error
        # Phase 2: make it durable. The line is complete on disk, so a
        # retry must only re-fsync on a fresh handle — rewriting would
        # duplicate the record.
        for attempt in range(attempts):
            try:
                self._ensure_open(io)
                io.fsync(self._handle)
                break
            except OSError as error:
                self._abort(trim=False)
                if error.errno == errno.EIO and attempt + 1 < attempts:
                    continue
                raise JournalWriteError(
                    f"{self.path}: fsync failed ({error}); the record "
                    f"is complete but not guaranteed durable") from error
        self._fold(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class CellState:
    """Folded state of one cell after replaying its journal records."""

    key: str
    status: str = "pending"
    spec: Optional[Dict] = None
    config_hash: Optional[str] = None
    attempt: int = 0
    result: Optional[Dict] = None
    error: Optional[str] = None
    violation: Optional[Dict] = None
    oom: bool = False
    worker: Optional[str] = None
    failures: List[str] = field(default_factory=list)


class SweepJournal(AppendLog):
    """Append-only JSONL journal of one sweep's cell lifecycle."""

    def __init__(self, path: str):
        super().__init__(path)
        self.meta: Dict = {}
        self.cells: Dict[str, CellState] = {}
        self.service_events: List[Dict] = []

    def _fold(self, record: Dict) -> None:
        kind = record.get("kind")
        if kind == "sweep":
            self.meta.update(record.get("meta", {}))
            return
        if kind == "service":
            event = dict(record)
            event.pop("kind", None)
            self.service_events.append(event)
            return
        if kind != "cell":
            return  # unknown kinds are forward-compatible noise
        key = record["key"]
        status = record.get("status")
        if status not in STATUSES:
            raise ValueError(f"{self.path}: bad status {status!r} "
                             f"for cell {key!r}")
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellState(key=key)
        cell.status = status
        if record.get("spec") is not None:
            cell.spec = record["spec"]
        if record.get("config_hash") is not None:
            cell.config_hash = record["config_hash"]
        if record.get("attempt") is not None:
            cell.attempt = record["attempt"]
        if record.get("worker") is not None:
            cell.worker = record["worker"]
        if status == "done":
            cell.result = record.get("result")
            cell.error = None
            cell.violation = None
            cell.oom = False
        elif status in ("failed", "quarantined"):
            cell.error = record.get("error")
            if record.get("violation") is not None:
                cell.violation = record["violation"]
            if record.get("oom"):
                cell.oom = True
            if record.get("error"):
                cell.failures.append(record["error"])

    # ----------------------------------------------------------- append
    def note_sweep(self, meta: Dict) -> None:
        """Record driver metadata (figure, sizes, scale) for resume."""
        self._append({"kind": "sweep", "meta": meta})

    def note_cell(self, key: str, status: str, *, spec: Optional[Dict] = None,
                  config_hash: Optional[str] = None,
                  attempt: Optional[int] = None,
                  result: Optional[Dict] = None,
                  error: Optional[str] = None,
                  violation: Optional[Dict] = None,
                  oom: Optional[bool] = None,
                  worker: Optional[str] = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"bad status {status!r}")
        record: Dict = {"kind": "cell", "key": key, "status": status}
        if spec is not None:
            record["spec"] = spec
        if config_hash is not None:
            record["config_hash"] = config_hash
        if attempt is not None:
            record["attempt"] = attempt
        if result is not None:
            record["result"] = result
        if error is not None:
            record["error"] = error
        if violation is not None:
            record["violation"] = violation
        if oom:
            record["oom"] = True
        if worker is not None:
            record["worker"] = worker
        self._append(record)

    def note_service(self, event: str, **fields) -> None:
        """Record one service event (``heartbeat_loss``, ``reassign``...).

        Service events are forward-compatible noise to pre-service
        readers of the journal; see ``docs/SERVICE.md`` for the event
        vocabulary.
        """
        record = {"kind": "service", "event": event}
        record.update(fields)
        self._append(record)

    # ---------------------------------------------------------- queries
    def done(self) -> Dict[str, CellState]:
        return {key: cell for key, cell in self.cells.items()
                if cell.status == "done"}

    def incomplete(self) -> Dict[str, CellState]:
        """Cells not terminally done: pending/running/failed/quarantined.

        ``running`` means the recording process died mid-cell; on resume
        those cells are simply re-run.
        """
        return {key: cell for key, cell in self.cells.items()
                if cell.status != "done"}

    def violated(self) -> Dict[str, CellState]:
        """Cells whose latest failure was an invariant violation."""
        return {key: cell for key, cell in self.cells.items()
                if cell.violation is not None}

    def oom_cells(self) -> Dict[str, CellState]:
        """Cells quarantined for busting their per-cell memory budget."""
        return {key: cell for key, cell in self.cells.items()
                if cell.oom}

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for cell in self.cells.values():
            out[cell.status] += 1
        return out

    # ------------------------------------------------- service queries
    def worker_cells(self) -> Dict[str, int]:
        """Completed cells attributed to each service worker."""
        out: Dict[str, int] = {}
        for cell in self.cells.values():
            if cell.status == "done" and cell.worker is not None:
                out[cell.worker] = out.get(cell.worker, 0) + 1
        return out

    def service_event_counts(self) -> Dict[str, int]:
        """Service events by name (``reassign``, ``heartbeat_loss``...)."""
        out: Dict[str, int] = {}
        for event in self.service_events:
            name = event.get("event", "unknown")
            out[name] = out.get(name, 0) + 1
        return out

    def reassignments(self) -> int:
        return self.service_event_counts().get("reassign", 0)

    def heartbeat_losses(self) -> int:
        return self.service_event_counts().get("heartbeat_loss", 0)

    def duplicates_dropped(self) -> int:
        """Late/duplicated results the coordinator refused to re-apply."""
        return self.service_event_counts().get("duplicate_dropped", 0)

    def epoch_fences(self) -> int:
        """Frames dropped for carrying a superseded registration epoch."""
        return self.service_event_counts().get("epoch_fence", 0)

    def rejected_submits(self) -> int:
        """Submits refused by admission control while this job ran."""
        return self.service_event_counts().get("submit_rejected", 0)

    def reconnects(self) -> int:
        """Workers that re-registered under a fresh epoch."""
        return (self.service_event_counts().get("worker_reconnect", 0)
                + self.service_event_counts().get("worker_superseded", 0))

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in STATUSES if counts[s]]
        return f"{self.path}: " + (", ".join(parts) or "empty")
