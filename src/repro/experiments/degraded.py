"""Degraded-mode sweep: completion-time inflation under a drive failure.

The paper evaluates the three architectures on their throughput when
everything works; this driver asks the follow-up question an operator
would — *what does losing a drive mid-scan cost each design?* For every
architecture it runs a task twice on the same configuration: once clean
(the baseline), once with a whole-drive failure injected partway through
the baseline's elapsed time. The run must complete either way; the
result reports the completion-time inflation plus the recovery counters
the fault subsystem accumulated.

The three designs degrade differently by construction:

* **Active Disks / cluster** lose a worker with its drive — the
  survivors re-scan the dead partition in explicit recovery rounds after
  the phase barrier (declustered reconstruction).
* **SMP** loses only spindle bandwidth — processors reroute striping
  chunks around the dead drive on the fly, so no recovery round exists,
  just a hotter surviving farm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch import RunResult
from ..faults import FaultPlan, FaultSpec
from .harness import execute_cells
from .runner import ARCHITECTURES, DEFAULT_SCALE
from .workers import CellSpec

__all__ = ["DegradedCell", "DegradedResult", "run_degraded_sweep",
           "drive_failure_plan"]


def drive_failure_plan(disk: int, at: float, seed: int = 0) -> FaultPlan:
    """A plan that kills ``disk.<disk>`` outright at time ``at``."""
    return FaultPlan.of(
        FaultSpec(kind="drive_failure", target=f"disk.{disk}", at=at),
        seed=seed)


@dataclass
class DegradedCell:
    """One architecture's clean-vs-degraded pair."""

    arch: str
    baseline: RunResult
    degraded: RunResult
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def inflation(self) -> float:
        """Degraded elapsed over clean elapsed (>= 1.0 in practice)."""
        return self.degraded.elapsed / self.baseline.elapsed


@dataclass
class DegradedResult:
    """Outcome of :func:`run_degraded_sweep`."""

    task: str
    num_disks: int
    failed_disk: int
    fail_fraction: float
    cells: List[DegradedCell] = field(default_factory=list)

    def cell(self, arch: str) -> DegradedCell:
        for cell in self.cells:
            if cell.arch == arch:
                return cell
        raise KeyError(f"no degraded cell for {arch!r}")


def run_degraded_sweep(task: str = "select", num_disks: int = 8,
                       failed_disk: int = 1, fail_fraction: float = 0.3,
                       scale: float = DEFAULT_SCALE, seed: int = 0,
                       architectures: Tuple[str, ...] = ARCHITECTURES,
                       runner=None) -> DegradedResult:
    """Clean + degraded run of ``task`` on every architecture.

    ``fail_fraction`` places the drive failure at that fraction of each
    architecture's *own* clean completion time, so every design is hit
    at the same relative point in its run.

    The sweep runs in two journaled stages when a
    :class:`~repro.experiments.harness.SweepRunner` is supplied: the
    clean baselines first (their elapsed times position the failures),
    then the degraded runs. A resumed journal replays both stages from
    cache, so the computed failure times — and therefore the degraded
    cells' config hashes — are identical on resume.
    """
    if not 0.0 <= fail_fraction < 1.0:
        raise ValueError(
            f"fail_fraction must be in [0, 1), got {fail_fraction}")
    result = DegradedResult(task=task, num_disks=num_disks,
                            failed_disk=failed_disk,
                            fail_fraction=fail_fraction)
    baseline_specs = [
        CellSpec(task=task, arch=arch, num_disks=num_disks,
                 variant="clean", scale=scale)
        for arch in architectures
    ]
    baselines = execute_cells(baseline_specs, runner)
    degraded_specs = [
        CellSpec(task=task, arch=arch, num_disks=num_disks,
                 variant="degraded", scale=scale,
                 fault_disk=failed_disk,
                 fault_at=baselines[spec.key].elapsed * fail_fraction,
                 fault_seed=seed)
        for arch, spec in zip(architectures, baseline_specs)
    ]
    degradeds = execute_cells(degraded_specs, runner)
    for arch, clean_spec, bad_spec in zip(architectures, baseline_specs,
                                          degraded_specs):
        degraded = degradeds[bad_spec.key]
        counters = {key: value for key, value in degraded.extras.items()
                    if key.startswith("faults.")}
        result.cells.append(DegradedCell(
            arch=arch, baseline=baselines[clean_spec.key],
            degraded=degraded, counters=counters))
    return result
