"""Experiment drivers regenerating every table and figure of the paper."""

from .figures import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
)
from .export import (
    fig1_rows,
    fig2_rows,
    fig3_rows,
    fig4_rows,
    fig5_rows,
    rows_to_csv,
    rows_to_json,
)
from .degraded import (
    DegradedCell,
    DegradedResult,
    drive_failure_plan,
    run_degraded_sweep,
)
from .artifacts import (
    atomic_write_text,
    result_from_dict,
    result_to_dict,
    verify_manifest,
    write_manifest,
)
from .harness import (
    SweepInterrupted,
    SweepRunner,
    execute_cells,
    resume_sweep,
)
from .journal import AppendLog, SweepJournal
from .workers import (
    CellOutcome,
    CellSpec,
    build_config,
    drain_pool,
    run_cell,
    run_cells,
)
from .report import render_bars, render_grouped_bars, render_series, render_table
from .scorecard import Claim, ClaimResult, paper_claims, run_scorecard
from .summary import run_all
from .runner import (
    ARCHITECTURES,
    DEFAULT_SCALE,
    Sweep,
    SweepCell,
    config_for,
    run_task,
    run_task_with_artifacts,
)

__all__ = [
    "ARCHITECTURES", "DEFAULT_SCALE", "config_for", "run_task",
    "run_task_with_artifacts", "Sweep", "SweepCell",
    "run_table1", "run_table2",
    "run_fig1", "run_fig2", "run_fig3", "run_fig4", "run_fig5",
    "Fig1Result", "Fig2Result", "Fig3Result", "Fig4Result", "Fig5Result",
    "render_table", "render_series", "render_bars", "render_grouped_bars",
    "run_all",
    "fig1_rows", "fig2_rows", "fig3_rows", "fig4_rows", "fig5_rows",
    "rows_to_csv", "rows_to_json",
    "run_scorecard", "paper_claims", "Claim", "ClaimResult",
    "run_degraded_sweep", "drive_failure_plan",
    "DegradedCell", "DegradedResult",
    "SweepRunner", "SweepInterrupted", "SweepJournal", "AppendLog",
    "execute_cells", "resume_sweep",
    "CellSpec", "CellOutcome", "build_config", "run_cell", "run_cells",
    "drain_pool",
    "atomic_write_text", "write_manifest", "verify_manifest",
    "result_to_dict", "result_from_dict",
]
