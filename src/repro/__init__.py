"""repro: a full reproduction of "Evaluation of Active Disks for Decision
Support Databases" (Uysal, Acharya, Saltz - HPCA 2000).

The package rebuilds the paper's entire experimental apparatus:

* :mod:`repro.sim` - the discrete-event kernel everything runs on;
* :mod:`repro.disk` - a DiskSim-style drive model (zoned geometry, seek
  curve, rotation, segmented cache);
* :mod:`repro.interconnect` - queue-based serial interconnects (FC-AL);
* :mod:`repro.net` - a Netsim-style switched-Ethernet fat-tree with
  MPI-like messaging;
* :mod:`repro.host` - CPUs, OS cost models, async I/O, striping;
* :mod:`repro.diskos` - the Active Disk runtime (streams, disklets,
  memory budget);
* :mod:`repro.arch` - the three machines (Active Disks, commodity
  cluster, ccNUMA SMP) executing common task programs, plus the cost
  model of Table 1;
* :mod:`repro.workloads` - Table 2 datasets, the eight decision-support
  tasks, reference algorithm implementations, the PipeHash planner;
* :mod:`repro.tracegen` - the analytic trace generator standing in for
  the paper's DEC Alpha trace capture;
* :mod:`repro.experiments` - drivers that regenerate every table and
  figure.

Quick start::

    from repro import run_task, config_for

    result = run_task(config_for("active", 64), "select", scale=1/16)
    print(result.elapsed, result.extras["fc_bytes"])
"""

from .arch import (
    ActiveDiskConfig,
    ActiveDiskMachine,
    ClusterConfig,
    ClusterMachine,
    RunResult,
    SMPConfig,
    SMPMachine,
    build_machine,
)
from .experiments import config_for, run_task
from .sim import Simulator
from .workloads import build_program, dataset_for, registered_tasks

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "ActiveDiskConfig", "ClusterConfig", "SMPConfig",
    "ActiveDiskMachine", "ClusterMachine", "SMPMachine",
    "build_machine", "build_program", "run_task", "config_for",
    "dataset_for", "registered_tasks", "RunResult",
    "__version__",
]
