"""Discrete-event simulation kernel.

This module implements the event-driven core that every Howsim component is
built on: a :class:`Simulator` that owns the virtual clock and the pending
event queue, :class:`Event` objects that processes wait on, and
:class:`Process` coroutines (plain Python generators) that describe the
behaviour of simulated entities (disk arms, CPUs, NICs, disklets, ...).

The design follows the classic process-interaction style (as popularized by
SimPy): a process is a generator that ``yield``-s events; when a yielded
event fires, the kernel resumes the generator, passing the event's value as
the result of the ``yield`` expression.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import itertools
from heapq import heappop
from typing import Any, Callable, Generator, Iterable, List, Optional

from .queues import make_queue

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "SimStalled",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class SimStalled(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`Simulator.run` when no event can ever fire again
    but live (non-daemon) processes exist — a deadlock. The ``blocked``
    attribute lists the stuck process names so the failure is
    diagnosable instead of a silent early exit.
    """

    def __init__(self, blocked: List[str]):
        shown = ", ".join(blocked[:8])
        if len(blocked) > 8:
            shown += f", ... ({len(blocked) - 8} more)"
        super().__init__(
            f"simulation stalled: event queue is empty but {len(blocked)} "
            f"process(es) are still waiting: {shown}")
        self.blocked = blocked


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening that processes can wait for.

    An event starts *untriggered*; calling :meth:`succeed` (or
    :meth:`fail`) schedules it to fire at the current simulation time.
    Once fired, all registered callbacks run, in registration order.

    Attributes
    ----------
    value:
        The payload passed to :meth:`succeed`, delivered to waiting
        processes as the result of their ``yield``.
    """

    __slots__ = ("sim", "callbacks", "value", "_triggered", "_ok",
                 "_defused", "_pooled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.value: Any = None
        self._triggered = False
        self._ok = True
        self._defused = False
        # Pooled events (kernel relays, sim.pause timeouts) are recycled
        # by the fast run loop the moment their callbacks have run.
        self._pooled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self.value = value
        sim = self.sim
        sim._push([sim._now, next(sim._counter), self])
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception raised at their ``yield``.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self.value = exception
        sim = self.sim
        sim._push([sim._now, next(sim._counter), self])
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The constructor inlines :class:`Event`'s field setup and the queue
    push: timeouts are the kernel's single most-allocated object, and
    every sleep in every device model goes through here (or through the
    pooled :meth:`Simulator.pause` variant).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self.value = value
        self._triggered = True
        self._ok = True
        self._defused = False
        self._pooled = False
        self.delay = delay
        sim._push([sim._now + delay, next(sim._counter), self])


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine, itself usable as an event (fires on return).

    The wrapped generator yields :class:`Event` instances; the process is
    resumed when each fires. When the generator returns, the process event
    succeeds with the generator's return value; if it raises, the process
    event fails with the exception (which propagates to any process that is
    waiting on it, or aborts the simulation run otherwise).
    """

    __slots__ = ("generator", "name", "daemon", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None, daemon: bool = False):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}")
        # Event.__init__ inlined: processes are spawned per message send
        # and per in-flight block read, so construction is a hot path.
        self.sim = sim
        self.callbacks = []
        self.value = None
        self._triggered = False
        self._ok = True
        self._defused = False
        self._pooled = False
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Daemon processes (idle service loops) may legitimately outlive
        # the run; only non-daemons count for stall detection.
        self.daemon = daemon
        if not daemon:
            sim._alive.add(self)
        self._target: Optional[Event] = None
        # One bound method reused for every wait: appending self._resume
        # directly would allocate a fresh bound-method object per event.
        self._resume_cb = self._resume
        # Bootstrap: resume the generator as soon as the simulation runs.
        # Scheduled directly through a recycled relay — no fresh Event,
        # no succeed() round trip — at exactly the position the old
        # bootstrap event occupied, so event ordering is unchanged.
        relay = sim._relay()
        relay.callbacks.append(self._resume_cb)
        sim._push([sim._now, next(sim._counter), relay])

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"{self.name}: cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        # A failed, pre-defused relay carrying the Interrupt reuses the
        # ordinary _resume path: _ok=False selects generator.throw(), and
        # _defused stops the kernel loop from re-raising the exception.
        event = self.sim._relay()
        event._ok = False
        event._defused = True
        event.value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        self.sim._schedule(event)

    def _resume(self, event: Event) -> None:
        # The kernel invokes this once per processed event, so the resume
        # branch and the generator step loop live in one frame. _target
        # is not cleared here: the hot path overwrites it below, and the
        # completion arms reset it explicitly.
        sim = self.sim
        generator = self.generator
        value = event.value
        if event._ok:
            throw = False
        else:
            event._defused = True
            throw = True
        while True:
            sim._active_process = self
            try:
                if throw:
                    target = generator.throw(value)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                sim._active_process = None
                sim._alive.discard(self)
                self._target = None
                # Break the process <-> bound-method cycle so finished
                # processes are freed by refcounting, not the cycle GC.
                self._resume_cb = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                sim._alive.discard(self)
                self._target = None
                self._resume_cb = None
                self.fail(exc)
                return
            sim._active_process = None
            if isinstance(target, Event):
                break
            # Non-Event yield: throw SimulationError into the generator
            # and route *both* outcomes through the normal completion
            # logic — a generator that catches the error and yields a
            # proper Event continues; one that lets it (or anything
            # else) propagate fails the process event instead of
            # escaping the kernel loop.
            value = SimulationError(
                f"{self.name}: processes must yield Event instances, "
                f"got {target!r}")
            throw = True
        callbacks = target.callbacks
        if callbacks is None:
            # Already fired and handled; resume via a recycled relay so
            # that processing order stays deterministic.
            relay = sim._relay()
            relay.value = target.value
            relay._ok = target._ok
            relay.callbacks.append(self._resume_cb)
            sim._push([sim._now, next(sim._counter), relay])
            self._target = relay
        else:
            callbacks.append(self._resume_cb)
            self._target = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._triggered else "alive"
        return f"<Process {self.name} ({state})>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
            if event._pooled:
                # Conditions read component values after their events are
                # processed; a recycled pause()/relay event may have been
                # reused (and rewritten) by then.
                raise SimulationError(
                    "pooled events (sim.pause) cannot be composed; "
                    "use sim.timeout() for events you retain")
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
        else:
            for event in self.events:
                event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* component events have fired.

    The value is the list of component event values, in construction order.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            # The condition already fired (or failed); a component that
            # fails afterwards must still be defused or its exception
            # would abort the whole simulation with no waiter to catch it.
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when *any* component event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self.succeed((event, event.value))


class Simulator:
    """The event loop: owns the clock and the pending-event queue.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, event)`` invoked for every event
        processed — useful for debugging simulations.
    queue:
        Event-queue backend: a registered name (``"heap"``,
        ``"calendar"``), an :class:`~repro.sim.queues.EventQueue`
        instance, or ``None`` to resolve via
        :func:`~repro.sim.queues.queue_override` /
        ``REPRO_SIM_QUEUE`` / the default. Every backend pops in the
        same global ``(time, seq)`` order, so results are byte-identical
        across backends; only the run loop's shape differs.

    Attributes
    ----------
    telemetry:
        The observability hub every instrumentation probe reports to.
        Defaults to the no-op :data:`~repro.telemetry.NULL_TELEMETRY`;
        install a real :class:`~repro.telemetry.Telemetry` (before
        building components) to capture spans and metrics.
    faults:
        The fault injector component models register ports with.
        Defaults to the no-op :data:`~repro.faults.NULL_FAULTS`; install
        a real :class:`~repro.faults.FaultInjector` (before building
        components) to arm a fault plan.
    """

    def __init__(self, trace: Optional[Callable[[float, Event], None]] = None,
                 debug: bool = False, queue=None):
        from ..faults import NULL_FAULTS
        from ..invariants import NULL_INVARIANTS
        from ..telemetry import NULL_TELEMETRY
        self._now = 0.0
        # Queue entries are [time, seq, event] *lists*, not tuples: on
        # CPython 3.11 the list freelist makes the push/pop cycle
        # measurably faster (timeout_storm best-of-5: 0.211s vs 0.219s
        # with tuples, ~3.5%); comparison cost is identical since the
        # seq tie-break means element two is never reached.
        self._queue = make_queue(queue)
        # Bound push cached once: every schedule site pays one attribute
        # load instead of re-resolving the backend per event. For the
        # heap backend this is the C-level partial(heappush, entries).
        self._push = self._queue.push
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self._trace = trace
        self._debug = debug
        self.event_count = 0
        self.telemetry = NULL_TELEMETRY
        self.faults = NULL_FAULTS
        self.invariants = NULL_INVARIANTS
        self._hooks: List[Any] = []
        self._alive: set = set()
        # Recycled kernel objects: relay/bootstrap/interrupt events and
        # pause() timeouts, returned here by the fast run loop.
        self._relay_pool: List[Event] = []
        self._timeout_pool: List[Timeout] = []
        # In-flight dispatch batch (batched backends only): same-tick
        # entries already popped but not yet all dispatched, which
        # peek() must still report as pending.
        self._batch: Optional[List[Any]] = None

    @property
    def debug(self) -> bool:
        """True when :meth:`run` uses the checked per-event loop."""
        return self._debug or self._trace is not None

    @property
    def queue_backend(self) -> str:
        """Registry name of the event-queue backend in use."""
        return self._queue.name

    # -- lifecycle hooks ---------------------------------------------------
    def add_hook(self, hook: Any) -> None:
        """Register a lifecycle hook (idempotent).

        A hook is any object with optional ``run_started(sim)`` and
        ``run_finished(sim)`` methods. ``run_started`` fires at each
        entry to :meth:`run`, ``run_finished`` when that call returns
        (including on error) — both in registration order. The
        telemetry subsystem uses this to start its periodic sampler and
        to finalize spans.
        """
        if hook not in self._hooks:
            self._hooks.append(hook)

    def _notify(self, method: str) -> None:
        for hook in self._hooks:
            callback = getattr(hook, method, None)
            if callback is not None:
                callback(self)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def pause(self, delay: float) -> Timeout:
        """A pooled one-shot timeout for yield-and-forget sleeps.

        Semantically identical to ``timeout(delay)`` for the dominant
        ``yield sim.pause(d)`` pattern, but the Timeout object is
        recycled the moment its callbacks have run, so a hot loop pays
        no allocation per sleep. The contract: **do not retain** the
        returned event — don't store it, don't read it after it fires,
        and don't put it in ``all_of``/``any_of`` (conditions reject
        pooled events). Use :meth:`timeout` for anything you keep.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        pool = self._timeout_pool
        if pool:
            # The fast loop recycles pause timeouts with callbacks
            # cleared and value/_ok/_defused already in their fresh
            # state, so reuse is pop + delay.
            timeout = pool.pop()
            timeout.delay = delay
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.sim = self
            timeout.callbacks = []
            timeout.value = None
            timeout._triggered = True
            timeout._ok = True
            timeout._defused = False
            timeout._pooled = True
            timeout.delay = delay
        self._push([self._now + delay, next(self._counter), timeout])
        return timeout

    def _relay(self) -> Event:
        """A recycled pre-triggered event for kernel-internal scheduling.

        Used for process bootstraps, already-processed-target relays and
        interrupt delivery: the caller appends its callback and calls
        :meth:`_schedule`. Returned to the pool by the fast run loop.
        """
        pool = self._relay_pool
        if pool:
            # Recycled with callbacks cleared and value/_ok/_defused
            # reset by the fast loop; ready to use as-is.
            return pool.pop()
        event = Event(self)
        event._triggered = True
        event._pooled = True
        return event

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None, daemon: bool = False) -> Process:
        """Start a new process from ``generator``.

        Daemon processes (``daemon=True``) are service loops that may
        idle forever; they are excluded from :class:`SimStalled`
        deadlock detection.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._push([self._now + delay, next(self._counter), event])

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none).

        During batched dispatch the same-tick batch has already been
        popped from the queue; its undispatched remainder is still
        *scheduled* as far as callers are concerned (the per-event loop
        would have it in the heap), so peek() reports the current tick
        while any batch entry is still pending. The last entry's event
        keeps its callbacks list until it is dispatched, which makes
        that check free for the hot loop.
        """
        batch = self._batch
        if batch is not None and batch[-1][2].callbacks is not None:
            return self._now
        return self._queue.peek_time()

    def step(self) -> None:
        """Process exactly one event (the checked, debuggable path).

        This is the slow-path twin of the inlined loop in
        :meth:`_run_fast`: it validates event times, feeds the trace
        callback and leaves processed events un-recycled so they stay
        inspectable. :meth:`run` uses it (via
        :func:`repro.sim.debug.run_checked`) whenever a trace is
        installed or ``debug=True``; manual single-stepping always goes
        through here.
        """
        if not self._queue:
            raise SimulationError(
                "step() on an empty event queue: nothing is scheduled "
                "(use run(), or schedule an event first)")
        when, _, event = self._queue.pop()
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.event_count += 1
        if self._trace is not None:
            self._trace(when, event)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event.value

    def _run_fast(self, until: Optional[float]) -> None:
        """The hot loop: pop / advance clock / fire callbacks.

        The past-time assertion matches :meth:`step` (same exception
        class and message for the same defect in either loop); the
        trace hook lives only in :meth:`step`, selected once per
        :meth:`run` call instead of being re-tested per event. Pooled
        relay/pause events are recycled here the moment their callbacks
        have run.

        Batched backends (``queue.batched``) dispatch through
        :meth:`_run_batched`, which drains one timestamp per inner
        loop; the heap reference backend keeps the historical per-event
        loop below, operating directly on its raw entry list.
        """
        if self._queue.batched:
            self._run_batched(until)
            return
        queue = self._queue.entries
        pop = heappop
        relay_pool = self._relay_pool
        timeout_pool = self._timeout_pool
        timeout_cls = Timeout
        now = self._now
        count = 0
        try:
            if until is None:
                while queue:
                    when, _, event = pop(queue)
                    if when < now:
                        raise SimulationError("event scheduled in the past")
                    self._now = now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event.value
                    if event._pooled:
                        # Recycle fully reset: reuse in pause()/_relay()
                        # is then a bare pop (the hotter side of the
                        # cycle), and the callbacks list is reused too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        if event.__class__ is timeout_cls:
                            timeout_pool.append(event)
                        else:
                            event.value = None
                            event._ok = True
                            event._defused = False
                            relay_pool.append(event)
                if self._alive:
                    raise SimStalled(sorted(p.name for p in self._alive))
            else:
                while queue:
                    if queue[0][0] > until:
                        break
                    when, _, event = pop(queue)
                    if when < now:
                        raise SimulationError("event scheduled in the past")
                    self._now = now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event.value
                    if event._pooled:
                        # Recycle fully reset: reuse in pause()/_relay()
                        # is then a bare pop (the hotter side of the
                        # cycle), and the callbacks list is reused too.
                        callbacks.clear()
                        event.callbacks = callbacks
                        if event.__class__ is timeout_cls:
                            timeout_pool.append(event)
                        else:
                            event.value = None
                            event._ok = True
                            event._defused = False
                            relay_pool.append(event)
                self._now = until
        finally:
            self.event_count += count

    def _run_batched(self, until: Optional[float]) -> None:
        """Same-tick batch dispatch for batched queue backends.

        Each ``pop_batch`` returns every pending event at the earliest
        timestamp, in seq (schedule) order, so the clock advance and
        the past-time check are paid once per *timestamp* instead of
        once per event. Events scheduled at the current tick during
        dispatch get higher seqs and form the next batch at the same
        time — exactly the order the per-event heap loop produces. If
        dispatch raises mid-batch, the unprocessed remainder is pushed
        back (original entries, original seqs) so the queue is left in
        the same state the per-event loop would leave it.
        """
        queue = self._queue
        pop_batch = queue.pop_batch
        push = queue.push
        relay_pool = self._relay_pool
        timeout_pool = self._timeout_pool
        timeout_cls = Timeout
        now = self._now
        count = 0
        try:
            if until is None:
                while True:
                    batch = pop_batch()
                    if batch is None:
                        break
                    when = batch[0][0]
                    if when < now:
                        for entry in batch[1:]:
                            push(entry)
                        raise SimulationError("event scheduled in the past")
                    self._now = now = when
                    self._batch = batch
                    n = len(batch)
                    count += n
                    i = 0
                    try:
                        while i < n:
                            event = batch[i][2]
                            i += 1
                            callbacks = event.callbacks
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                            if not event._ok and not event._defused:
                                raise event.value
                            if event._pooled:
                                # Recycle fully reset (see _run_fast).
                                callbacks.clear()
                                event.callbacks = callbacks
                                if event.__class__ is timeout_cls:
                                    timeout_pool.append(event)
                                else:
                                    event.value = None
                                    event._ok = True
                                    event._defused = False
                                    relay_pool.append(event)
                    except BaseException:
                        # The reference loop counts only dispatched
                        # events; unwind the pre-count for the
                        # requeued remainder.
                        count -= n - i
                        for entry in batch[i:]:
                            push(entry)
                        raise
                if self._alive:
                    raise SimStalled(sorted(p.name for p in self._alive))
            else:
                peek = queue.peek_time
                while True:
                    when = peek()
                    if when > until:
                        break
                    batch = pop_batch()
                    if when < now:
                        for entry in batch[1:]:
                            push(entry)
                        raise SimulationError("event scheduled in the past")
                    self._now = now = when
                    self._batch = batch
                    n = len(batch)
                    count += n
                    i = 0
                    try:
                        while i < n:
                            event = batch[i][2]
                            i += 1
                            callbacks = event.callbacks
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                            if not event._ok and not event._defused:
                                raise event.value
                            if event._pooled:
                                # Recycle fully reset (see _run_fast).
                                callbacks.clear()
                                event.callbacks = callbacks
                                if event.__class__ is timeout_cls:
                                    timeout_pool.append(event)
                                else:
                                    event.value = None
                                    event._ok = True
                                    event._defused = False
                                    relay_pool.append(event)
                    except BaseException:
                        # The reference loop counts only dispatched
                        # events; unwind the pre-count for the
                        # requeued remainder.
                        count -= n - i
                        for entry in batch[i:]:
                            push(entry)
                        raise
                self._now = until
        finally:
            self._batch = None
            self.event_count += count

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock reaches ``until``.

        With a trace installed or ``debug=True`` the run goes through
        the checked per-event loop (see :mod:`repro.sim.debug`); with
        an armed :class:`~repro.invariants.InvariantAuditor` installed
        it goes through the audited loop (see
        :mod:`repro.invariants.kernel`); otherwise the inlined fast
        loop processes events with the per-event checks hoisted out.

        Raises
        ------
        SimStalled
            If an unbounded run (``until is None``) drains the queue
            while non-daemon processes are still waiting: nothing can
            ever wake them, so the simulation has deadlocked. Bounded
            runs skip the check — waiters may legitimately be resumed
            by events triggered between ``run(until=...)`` calls.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        self._notify("run_started")
        try:
            if self._debug or self._trace is not None:
                from .debug import run_checked
                run_checked(self, until)
            elif self.invariants.enabled:
                from ..invariants.kernel import run_audited
                run_audited(self, until)
            else:
                self._run_fast(until)
        finally:
            self._notify("run_finished")
