"""Measurement helpers: counters, time-weighted averages, busy trackers.

Every architecture model exposes utilization and breakdown numbers through
these helpers; the experiment drivers aggregate them into the
per-figure/table reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .core import Simulator

__all__ = ["Counter", "TimeWeighted", "BusyTracker", "Tally", "StatSet"]


class Counter:
    """A plain additive counter (bytes moved, requests issued, ...)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Tally:
    """Accumulate observations; report count/mean/min/max."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TimeWeighted:
    """Track a piecewise-constant value and its time-weighted average."""

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name
        self._value = initial
        self._area = 0.0
        self._created = sim.now
        self._since = sim.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._since)
        self._since = now
        self._value = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted average over [t_created, now].

        Averaging over the tracker's own lifetime — not ``[0, now]`` —
        matters for components created mid-run: dividing by the full
        clock would silently deflate their utilization by the fraction
        of the run they did not exist for.
        """
        now = self.sim.now
        elapsed = now - self._created
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._since)
        return area / elapsed


class BusyTracker:
    """Accumulate named time buckets (compute/idle/io/...) for breakdowns.

    Components call :meth:`charge` with a bucket name and a duration; the
    experiment drivers read :attr:`buckets` to build breakdown figures like
    the paper's Figure 3.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.buckets: Dict[str, float] = {}

    def charge(self, bucket: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for bucket {bucket!r}: {duration}")
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + duration

    def total(self) -> float:
        return sum(self.buckets.values())

    def fractions(self) -> Dict[str, float]:
        """Each bucket as a fraction of the tracker's total."""
        total = self.total()
        if total <= 0:
            return {k: 0.0 for k in self.buckets}
        return {k: v / total for k, v in self.buckets.items()}

    def merged(self, other: "BusyTracker") -> "BusyTracker":
        out = BusyTracker(self.name)
        for src in (self, other):
            for key, val in src.buckets.items():
                out.charge(key, val)
        return out


@dataclass
class StatSet:
    """A named bundle of counters/tallies collected from one simulation run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    tallies: Dict[str, Tally] = field(default_factory=dict)
    trackers: Dict[str, BusyTracker] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def tally(self, name: str) -> Tally:
        if name not in self.tallies:
            self.tallies[name] = Tally(name)
        return self.tallies[name]

    def tracker(self, name: str) -> BusyTracker:
        if name not in self.trackers:
            self.trackers[name] = BusyTracker(name)
        return self.trackers[name]

    def as_rows(self) -> List[Tuple[str, float]]:
        """Flatten everything into (name, value) rows for reporting."""
        rows: List[Tuple[str, float]] = []
        rows.extend((c.name, c.value) for c in self.counters.values())
        rows.extend((f"{t.name}.mean", t.mean) for t in self.tallies.values())
        for tracker in self.trackers.values():
            rows.extend(
                (f"{tracker.name}.{bucket}", value)
                for bucket, value in sorted(tracker.buckets.items()))
        return rows
