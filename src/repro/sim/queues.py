"""Pluggable event-queue backends for the simulation kernel.

The kernel schedules ``[time, seq, event]`` entries (lists, see
``sim/core.py`` for why) and pops them in global ``(time, seq)`` order.
That contract — FIFO among same-tick events via the monotonically
increasing ``seq`` — is what makes every figure byte-reproducible, so a
queue backend is correct only if its pop order is *identical* to a
binary heap's, entry for entry.

Two backends ship:

``heap`` (:class:`HeapEventQueue`)
    The reference: a plain ``heapq`` list. ``push`` is a
    ``functools.partial(heappush, entries)`` so the hot path stays a
    single C call, and the fast run loop bypasses the interface
    entirely by iterating ``queue.entries`` — the backend exists to
    define correct behaviour and to A/B against, not to be fast.

``calendar`` (:class:`CalendarQueue`, the default)
    A self-resizing calendar queue (Brown, CACM 1988) specialised for
    discrete-event simulation:

    * a **same-tick FIFO** list for entries scheduled at exactly the
      current dispatch time — the dominant push in this kernel
      (``succeed``/relay/bootstrap all schedule "now") — where push is
      an append and :meth:`pop_batch` is a double-buffer list swap;
    * a **bucket array** over one "day" ``[day_start, day_end)`` of
      width-``w`` buckets; future pushes append to their bucket, and a
      bucket is heapified only when the dispatch cursor reaches it
      (the *active* bucket, a mini-heap that absorbs late arrivals);
    * a sorted **far heap** for entries beyond the current day, drained
      bucket-ward at each day roll (the roll jumps ``day_start``
      straight to the earliest far entry, so empty days are never
      scanned);
    * **online tuning**: bucket width adapts to the observed mean
      inter-batch gap at day rolls, and a skewed burst that overfills
      the bucket array triggers an immediate respread sized from the
      pending entries' actual span.

    Entries that arrive *behind* the dispatch cursor land in a ``past``
    mini-heap and pop first, so the kernel raises the same
    "event scheduled in the past" error the heap backend would.

Backend selection (see :func:`resolve_backend`): an explicit
``Simulator(queue=...)`` argument wins, then a :func:`queue_override`
context, then the ``REPRO_SIM_QUEUE`` environment variable, then
:data:`DEFAULT_BACKEND`.
"""

from __future__ import annotations

import os
from bisect import bisect_left, insort
from heapq import heappop, heappush
from functools import partial
from typing import Any, List, Optional

__all__ = [
    "EventQueue",
    "HeapEventQueue",
    "CalendarQueue",
    "QUEUE_BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "make_queue",
    "queue_override",
]

_INF = float("inf")


class EventQueue:
    """The narrow interface every kernel queue backend implements.

    Entries are ``[time, seq, event]`` lists built by the caller; the
    queue never inspects ``event``. ``batched`` tells the run loop
    whether to use the per-event reference loop (``False``: the loop
    pops ``queue.entries`` directly) or the batch-dispatch loop
    (``True``: :meth:`pop_batch` drains one timestamp at a time).
    """

    __slots__ = ()

    #: Registry name of the backend.
    name = "abstract"
    #: Whether the fast run loop should use the batch-dispatch path.
    batched = False

    def push(self, entry: List[Any]) -> None:
        """Insert one ``[time, seq, event]`` entry."""
        raise NotImplementedError

    def pop(self):
        """Remove and return the globally smallest ``(time, seq)`` entry."""
        raise NotImplementedError

    def pop_batch(self):
        """Drain every entry at the earliest pending timestamp.

        Returns a list of entries in ``seq`` order, or ``None`` when the
        queue is empty. The returned list is owned by the queue and only
        valid until the next ``pop_batch`` call.
        """
        raise NotImplementedError

    def peek_time(self) -> float:
        """Timestamp of the next entry (``inf`` when empty)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The reference backend: a plain binary heap of entries."""

    __slots__ = ("entries", "push", "_out")

    name = "heap"
    batched = False

    def __init__(self):
        self.entries: List[List[Any]] = []
        # A partial over the C heappush keeps the per-event push a
        # single C-level call — byte-for-byte the cost the kernel paid
        # before backends existed.
        self.push = partial(heappush, self.entries)
        self._out: List[List[Any]] = []

    def pop(self):
        return heappop(self.entries)

    def pop_batch(self):
        entries = self.entries
        if not entries:
            return None
        out = self._out
        out.clear()
        out.append(heappop(entries))
        when = out[0][0]
        while entries and entries[0][0] == when:
            out.append(heappop(entries))
        return out

    def peek_time(self) -> float:
        entries = self.entries
        return entries[0][0] if entries else _INF

    def __len__(self) -> int:
        return len(self.entries)


#: Calendar geometry bounds: the bucket array never shrinks below
#: ``_MIN_BUCKETS`` (pointless churn) or grows past ``_MAX_BUCKETS``
#: (beyond which per-day memory dominates any scan savings).
_MIN_BUCKETS = 32
_MAX_BUCKETS = 1 << 16
#: Floor for the adaptive bucket width, guarding degenerate spans.
_MIN_WIDTH = 1e-12
#: Consumed-prefix length at which the active run is compacted.
_COMPACT = 1 << 14


class CalendarQueue(EventQueue):
    """Self-resizing calendar queue with a same-tick FIFO fast path.

    The *active* structure — the bucket currently being drained — is a
    sorted run with a cursor, not a heap: :meth:`_settle` sorts the
    bucket once (C timsort; near-linear for the common equal-time
    barrier batches, which arrive already in seq order), pops advance
    the cursor, and :meth:`pop_batch` extracts a whole equal-time run
    as one slice. Late arrivals behind the cursor's bucket are
    ``insort``-ed into the unconsumed tail, keeping exact order.
    """

    __slots__ = ("_fifo", "_out", "_buckets", "_nbuckets", "_cur",
                 "_cur_time", "_active", "_apos", "_far", "_far_max",
                 "_past", "_in_buckets", "_day_start", "_day_end",
                 "_width", "_inv_width", "_gap_sum", "_gap_count",
                 "resizes")

    name = "calendar"
    batched = True

    def __init__(self, nbuckets: int = _MIN_BUCKETS,
                 width: float = 1e-5):
        if nbuckets < 1:
            raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
        if width <= 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        #: entries at exactly ``_cur_time`` in seq (arrival) order
        self._fifo: List[List[Any]] = []
        #: recycled batch buffer (double-buffered with ``_fifo``)
        self._out: List[List[Any]] = []
        self._nbuckets = nbuckets
        self._buckets: List[List[List[Any]]] = [[] for _ in range(nbuckets)]
        #: index of the bucket currently being drained (-1: before 0)
        self._cur = -1
        #: time of the most recently dispatched batch
        self._cur_time = 0.0
        #: sorted run: the reached bucket plus insort-ed late arrivals
        self._active: List[List[Any]] = []
        #: cursor into ``_active``; entries before it are consumed
        self._apos = 0
        #: heap of entries at/after ``_day_end``
        self._far: List[List[Any]] = []
        #: largest timestamp ever pushed far (span estimate for sizing)
        self._far_max = -_INF
        #: heap of entries behind ``_cur_time`` (kernel error path)
        self._past: List[List[Any]] = []
        self._in_buckets = 0
        self._day_start = 0.0
        self._width = width
        self._inv_width = 1.0 / width
        self._day_end = nbuckets * width
        # Online width estimate: mean gap between consecutive dispatch
        # timestamps, decayed at each day roll so it tracks the current
        # regime rather than the run's full history.
        self._gap_sum = 0.0
        self._gap_count = 0
        #: observability: how often the geometry was re-tuned
        self.resizes = 0

    # ------------------------------------------------------------ push
    def push(self, entry: List[Any]) -> None:
        t = entry[0]
        if t == self._cur_time:
            self._fifo.append(entry)
            return
        delta = t - self._day_start
        if delta < 0.0:
            if t < self._cur_time:
                heappush(self._past, entry)
            else:
                # Between the cursor and the day window (possible right
                # after a roll jumped day_start forward): insort into
                # the active run's unconsumed tail keeps exact order.
                insort(self._active, entry, self._apos)
            return
        if t >= self._day_end:
            heappush(self._far, entry)
            if t > self._far_max:
                self._far_max = t
            return
        idx = int(delta * self._inv_width)
        if idx >= self._nbuckets:  # float rounding at the day edge
            idx = self._nbuckets - 1
        if idx <= self._cur:
            # At or behind the dispatch cursor: the active run keeps
            # exact order for in-bucket late arrivals.
            insort(self._active, entry, self._apos)
            return
        self._buckets[idx].append(entry)
        count = self._in_buckets + 1
        self._in_buckets = count
        if count > (self._nbuckets << 2) and self._nbuckets < _MAX_BUCKETS:
            self._respread()

    # ------------------------------------------------------------- pop
    def pop(self):
        """Single-entry pop (checked/audited per-event paths)."""
        past = self._past
        if past:
            return heappop(past)
        fifo = self._fifo
        if fifo:
            return fifo.pop(0)
        pos = self._apos
        if pos >= len(self._active):
            if not (self._in_buckets or self._far):
                raise IndexError("pop from an empty event queue")
            self._settle()
            pos = self._apos
        entry = self._active[pos]
        self._apos = pos + 1
        when = entry[0]
        if when > self._cur_time:
            self._gap_sum += when - self._cur_time
            self._gap_count += 1
            self._cur_time = when
        return entry

    def pop_batch(self):
        past = self._past
        if past:
            out = self._out
            out.clear()
            when = past[0][0]
            while past and past[0][0] == when:
                out.append(heappop(past))
            return out
        fifo = self._fifo
        if fifo:
            # Double-buffer swap: the whole same-tick batch is returned
            # as-is and the drained buffer becomes the next FIFO.
            out = self._out
            out.clear()
            self._fifo = out
            self._out = fifo
            return fifo
        active = self._active
        pos = self._apos
        if pos >= len(active):
            if not (self._in_buckets or self._far):
                return None
            self._settle()
            active = self._active
            pos = self._apos
        when = active[pos][0]
        end = pos + 1
        n = len(active)
        while end < n and active[end][0] == when:
            end += 1
        batch = active[pos:end]
        if end >= n and end > _COMPACT:
            active.clear()
            self._apos = 0
        else:
            self._apos = end
        self._gap_sum += when - self._cur_time
        self._gap_count += 1
        self._cur_time = when
        return batch

    # ------------------------------------------------------------ scan
    def _settle(self) -> None:
        """Advance the cursor to the next non-empty bucket (rolling days)."""
        cur = self._cur + 1
        while True:
            if self._in_buckets:
                buckets = self._buckets
                n = self._nbuckets
                while cur < n:
                    bucket = buckets[cur]
                    if bucket:
                        buckets[cur] = []
                        self._in_buckets -= len(bucket)
                        # Timsort: near-linear for the dominant cases
                        # (one barrier timestamp, or seq-ordered runs).
                        bucket.sort()
                        self._active = bucket
                        self._apos = 0
                        self._cur = cur
                        return
                    cur += 1
            if not self._far:
                raise IndexError("settle on an empty event queue")
            self._roll_day()
            cur = 0

    def _roll_day(self) -> None:
        """Start a new day at the earliest far entry and refill buckets."""
        far = self._far
        self._adapt()
        # Jumping straight to the earliest far entry skips any number of
        # empty days without scanning their buckets.
        day_start = far[0][0]
        n = self._nbuckets
        end = day_start + n * self._width
        self._day_start = day_start
        self._day_end = end
        self._cur = -1
        buckets = self._buckets
        inv = self._inv_width
        limit = n - 1
        # A sorted list satisfies the heap invariant, so the far heap
        # can be sorted in place (C timsort), the day's prefix split
        # off, and the remainder kept as the far heap verbatim.
        far.sort()
        cut = bisect_left(far, end, key=_entry_time)
        if cut == 0:
            # Degenerate window (day_start at +inf or width underflow):
            # force progress with the earliest entry alone.
            cut = 1
        for entry in far[:cut] if cut > 1 else (far[0],):
            idx = int((entry[0] - day_start) * inv)
            buckets[idx if idx < limit else limit].append(entry)
        del far[:cut]
        self._in_buckets += cut
        if not far:
            self._far_max = -_INF

    def _adapt(self) -> None:
        """Between days (buckets empty): re-tune width and bucket count."""
        far = self._far
        pending = len(far)
        resized = False
        n = self._nbuckets
        if pending > (n << 1) and n < _MAX_BUCKETS:
            while pending > (n << 1) and n < _MAX_BUCKETS:
                n <<= 1
        elif n > _MIN_BUCKETS and pending < (n >> 2):
            while n > _MIN_BUCKETS and pending < (n >> 2):
                n >>= 1
        if n != self._nbuckets:
            self._nbuckets = n
            self._buckets = [[] for _ in range(n)]
            resized = True
        # Width: one day should cover the pending span (so pushes land
        # in buckets, not the far heap), floored by the observed mean
        # dispatch gap so dense regimes keep a few timestamps per
        # bucket rather than collapsing into one.
        span = self._far_max - far[0][0]
        width = None
        if 0.0 < span < _INF:
            width = span / n
        if self._gap_count >= 32:
            mean_gap = self._gap_sum / self._gap_count
            floor = mean_gap * 2.0
            if width is None or width < floor:
                width = floor
            self._gap_sum *= 0.5
            self._gap_count >>= 1
        if width is not None and width > _MIN_WIDTH:
            ratio = width * self._inv_width
            if ratio > 2.0 or ratio < 0.5:
                self._width = width
                self._inv_width = 1.0 / width
                resized = True
        if resized:
            self.resizes += 1

    def _respread(self) -> None:
        """Mid-day rescue for a skewed burst that overfilled the buckets.

        Gathers every pending bucket entry, re-tunes width to the
        entries' observed span, grows the bucket array, and re-places
        everything under the new geometry. The active run is left
        alone: its entries all precede the gathered ones, and it is
        drained first by construction.
        """
        pending: List[List[Any]] = []
        for i, bucket in enumerate(self._buckets):
            if bucket:
                pending.extend(bucket)
                self._buckets[i] = []
        self._in_buckets = 0
        if not pending:  # pragma: no cover - trigger implies entries
            return
        t_min = min(entry[0] for entry in pending)
        t_max = max(entry[0] for entry in pending)
        n = self._nbuckets
        while len(pending) > (n << 1) and n < _MAX_BUCKETS:
            n <<= 1
        width = max((t_max - t_min) / len(pending), _MIN_WIDTH)
        self._nbuckets = n
        self._width = width
        self._inv_width = 1.0 / width
        self._day_start = t_min
        end = t_min + n * width
        if self._far:
            # Never extend the day past the earliest far entry, or a
            # bucketed entry could pop before a smaller far one.
            far_min = self._far[0][0]
            if far_min < end:
                end = far_min
        self._day_end = end
        self._cur = -1
        if len(self._buckets) != n:
            self._buckets = [[] for _ in range(n)]
        buckets = self._buckets
        inv = self._inv_width
        limit = n - 1
        far = self._far
        count = 0
        for entry in pending:
            t = entry[0]
            if t >= end:
                heappush(far, entry)
                if t > self._far_max:
                    self._far_max = t
                continue
            idx = int((t - t_min) * inv)
            buckets[idx if idx < limit else limit].append(entry)
            count += 1
        self._in_buckets = count
        self.resizes += 1

    # ------------------------------------------------------------ misc
    def peek_time(self) -> float:
        if self._past:
            return self._past[0][0]
        if self._fifo:
            return self._fifo[0][0]
        if self._apos >= len(self._active):
            if not (self._in_buckets or self._far):
                return _INF
            self._settle()
        return self._active[self._apos][0]

    def __len__(self) -> int:
        return (len(self._fifo) + len(self._active) - self._apos
                + self._in_buckets + len(self._far) + len(self._past))


def _entry_time(entry: List[Any]) -> float:
    return entry[0]


#: name -> backend class; extended in-process by tests/experiments.
QUEUE_BACKENDS = {
    HeapEventQueue.name: HeapEventQueue,
    CalendarQueue.name: CalendarQueue,
}

#: Backend used when nothing selects one explicitly. The calendar queue
#: is the production default; ``heap`` is the reference for A/B runs.
DEFAULT_BACKEND = CalendarQueue.name

#: Process-local override installed by :func:`queue_override`.
_OVERRIDE: Optional[str] = None

#: Environment variable consulted at Simulator construction.
ENV_VAR = "REPRO_SIM_QUEUE"


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve (and validate) the backend name to construct.

    Precedence: explicit ``name`` > :func:`queue_override` context >
    ``REPRO_SIM_QUEUE`` > :data:`DEFAULT_BACKEND`.
    """
    if name is None:
        name = _OVERRIDE or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in QUEUE_BACKENDS:
        raise ValueError(
            f"unknown event-queue backend {name!r}; "
            f"pick one of {tuple(sorted(QUEUE_BACKENDS))}")
    return name


def make_queue(queue=None) -> EventQueue:
    """Build the queue a ``Simulator(queue=...)`` argument describes.

    ``queue`` may be ``None`` (resolve via override/env/default), a
    registered backend name, or an already-constructed queue object
    (used as-is — handy for instrumented queues in tests).
    """
    if queue is not None and not isinstance(queue, str):
        return queue
    return QUEUE_BACKENDS[resolve_backend(queue)]()


class queue_override:
    """Context manager: select ``name`` for Simulators built inside.

    Weaker than an explicit ``Simulator(queue=...)`` argument, stronger
    than ``REPRO_SIM_QUEUE``. Used by the bench/identity machinery to
    pin a backend without mutating the process environment.
    """

    def __init__(self, name: str):
        resolve_backend(name)  # validate eagerly
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self):
        global _OVERRIDE
        self._previous = _OVERRIDE
        _OVERRIDE = self._name
        return self

    def __exit__(self, *exc):
        global _OVERRIDE
        _OVERRIDE = self._previous
        return False
