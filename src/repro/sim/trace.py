"""Execution tracing for debugging simulations.

A :class:`TraceLog` plugs into :class:`~repro.sim.core.Simulator` as its
``trace`` callback and records every processed event into a bounded ring
buffer, plus running counts per event class. Use it to answer "what was
the simulation doing around t=12.3?" without printf-ing the models:

>>> from repro.sim import Simulator
>>> from repro.sim.trace import TraceLog
>>> log = TraceLog(capacity=1000)
>>> sim = Simulator(trace=log)
>>> def p():
...     yield sim.timeout(1.0)
>>> _ = sim.process(p())
>>> sim.run()
>>> log.counts["Timeout"] >= 1
True
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .core import Event, Process, Simulator, Timeout

__all__ = ["TraceEntry", "TraceLog"]


@dataclass(frozen=True)
class TraceEntry:
    """One processed event: when, what kind, and (for processes) who."""

    time: float
    kind: str
    name: str = ""


class TraceLog:
    """Bounded event recorder usable as ``Simulator(trace=...)``.

    When a :class:`~repro.telemetry.Telemetry` hub is attached (via the
    ``telemetry`` argument or :meth:`attach`), named process completions
    are forwarded to it as ``kernel``-category instant events — so the
    debug tracer and the observability subsystem tell one story: the
    exported Chrome trace shows exactly the completions this ring buffer
    recorded, and :meth:`window` answers the same question locally.
    """

    def __init__(self, capacity: int = 10_000, telemetry=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {}
        self.total = 0
        self._telemetry = telemetry

    def attach(self, telemetry) -> "TraceLog":
        """Forward future entries to a telemetry hub (fluent)."""
        self._telemetry = telemetry
        return self

    def __call__(self, time: float, event: Event) -> None:
        kind = type(event).__name__
        name = event.name if isinstance(event, Process) else ""
        self.entries.append(TraceEntry(time=time, kind=kind, name=name))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.total += 1
        tel = self._telemetry
        if tel is not None and tel.enabled and name:
            tel.spans.instant("kernel", name, "kernel.processes", ts=time)

    def window(self, start: float, end: Optional[float] = None
               ) -> List[TraceEntry]:
        """Entries with ``start <= time < end`` (within the ring buffer).

        ``end=None`` means "until the end of the buffer". Only entries
        still inside the ring are visible: after wraparound the oldest
        entries are gone, by design.
        """
        if end is None:
            end = float("inf")
        if end < start:
            raise ValueError(f"bad window [{start}, {end})")
        return [e for e in self.entries if start <= e.time < end]

    def completed_processes(self) -> List[Tuple[float, str]]:
        """(time, name) of named process completions, in order.

        A :class:`~repro.sim.core.Process` is itself an event that fires
        when its generator returns, so completions — not every
        resumption — are what the event stream carries.
        """
        return [(entry.time, entry.name) for entry in self.entries
                if entry.kind == "Process" and entry.name]

    def summary(self) -> str:
        lines = [f"{self.total} events traced "
                 f"(last {len(self.entries)} retained)"]
        for kind, count in sorted(self.counts.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {kind}: {count}")
        return "\n".join(lines)
