"""Discrete-event simulation kernel used by every Howsim component."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimStalled,
    SimulationError,
    Simulator,
    Timeout,
)
from .queues import (
    DEFAULT_BACKEND,
    QUEUE_BACKENDS,
    CalendarQueue,
    EventQueue,
    HeapEventQueue,
    queue_override,
)
from .resources import Mutex, ProcessPool, Server, Store
from .stats import BusyTracker, Counter, StatSet, Tally, TimeWeighted
from .sampling import Sampler, sparkline
from .trace import TraceEntry, TraceLog

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf",
    "Interrupt", "SimulationError", "SimStalled",
    "EventQueue", "HeapEventQueue", "CalendarQueue",
    "QUEUE_BACKENDS", "DEFAULT_BACKEND", "queue_override",
    "Server", "Mutex", "Store", "ProcessPool",
    "Counter", "Tally", "TimeWeighted", "BusyTracker", "StatSet",
    "TraceLog", "TraceEntry", "Sampler", "sparkline",
]
