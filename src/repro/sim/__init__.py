"""Discrete-event simulation kernel used by every Howsim component."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimStalled,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Mutex, ProcessPool, Server, Store
from .stats import BusyTracker, Counter, StatSet, Tally, TimeWeighted
from .sampling import Sampler, sparkline
from .trace import TraceEntry, TraceLog

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "AllOf", "AnyOf",
    "Interrupt", "SimulationError", "SimStalled",
    "Server", "Mutex", "Store", "ProcessPool",
    "Counter", "Tally", "TimeWeighted", "BusyTracker", "StatSet",
    "TraceLog", "TraceEntry", "Sampler", "sparkline",
]
