"""The checked (debug) kernel loop.

:meth:`~repro.sim.core.Simulator.run` dispatches here when a trace
callback is installed or the simulator was built with ``debug=True``.
The loop processes events one at a time through
:meth:`~repro.sim.core.Simulator.step`, which keeps every per-event
check the fast loop hoists out:

* the past-time assertion (an event scheduled behind the clock is a
  kernel-invariant violation and raises immediately at the offending
  event, not as downstream nonsense);
* the ``trace(time, event)`` callback for every processed event;
* no event recycling — processed relay/pause events keep their final
  state, so a debugger or test can inspect them after the fact.

Hot modules (device models, architecture machines) must never import
this module — the fast/debug split is selected once per ``run()`` by
the kernel itself, and a direct dependency here would drag per-event
checks back into the hot path. A ruff ``banned-api`` rule enforces
this; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .core import SimStalled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Simulator

__all__ = ["run_checked"]


def run_checked(sim: "Simulator", until: Optional[float]) -> None:
    """Drain the queue via checked single steps (mirrors ``_run_fast``)."""
    while sim._queue:
        if until is not None and sim.peek() > until:
            sim._now = until
            return
        sim.step()
    if until is None and sim._alive:
        raise SimStalled(sorted(p.name for p in sim._alive))
    if until is not None:
        sim._now = until
