"""Periodic sampling of simulation state into time series.

Attach a :class:`Sampler` before running to record utilizations, queue
lengths or any numeric probe at fixed simulated intervals — the raw
material for time-series plots (loop utilization over a sort run, idle
fraction around a phase boundary, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .core import Simulator

__all__ = ["Sampler", "sparkline"]

_BARS = " .:-=+*#%@"


@dataclass(frozen=True)
class Sample:
    time: float
    values: Tuple[float, ...]


class Sampler:
    """Sample named probes every ``interval`` simulated seconds.

    Probes are zero-argument callables returning floats. Sampling stops
    automatically when the event queue drains (the sampler never keeps
    a simulation alive: it re-arms only while other work is pending).
    """

    def __init__(self, sim: Simulator, interval: float,
                 probes: Dict[str, Callable[[], float]]):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not probes:
            raise ValueError("Sampler needs at least one probe")
        self.sim = sim
        self.interval = interval
        self.names = tuple(probes)
        self._probes = tuple(probes.values())
        self.samples: List[Sample] = []
        sim.process(self._loop(), name="sampler")

    def _loop(self):
        while True:
            self._take()
            # Only re-arm while something else is scheduled; otherwise
            # the sampler would tick forever on an idle simulation.
            if self.sim.peek() == float("inf"):
                return
            yield self.sim.timeout(self.interval)

    def _take(self) -> None:
        self.samples.append(Sample(
            time=self.sim.now,
            values=tuple(float(probe()) for probe in self._probes)))

    def series(self, name: str) -> List[Tuple[float, float]]:
        """(time, value) pairs for one probe."""
        index = self.names.index(name)
        return [(s.time, s.values[index]) for s in self.samples]

    def render(self, width: int = 60) -> str:
        """One sparkline per probe, resampled to ``width`` characters."""
        lines = []
        label_width = max(len(n) for n in self.names)
        for name in self.names:
            values = [v for _, v in self.series(name)]
            lines.append(f"{name.ljust(label_width)}  "
                         f"{sparkline(values, width)}")
        return "\n".join(lines)


def sparkline(values: List[float], width: int = 60) -> str:
    """Render values as a fixed-width ASCII intensity strip."""
    if not values:
        return ""
    # Resample to width buckets (mean per bucket).
    buckets: List[float] = []
    for i in range(min(width, len(values))):
        lo = i * len(values) // min(width, len(values))
        hi = max(lo + 1, (i + 1) * len(values) // min(width, len(values)))
        chunk = values[lo:hi]
        buckets.append(sum(chunk) / len(chunk))
    peak = max(buckets)
    if peak <= 0:
        return " " * len(buckets)
    out = []
    for value in buckets:
        level = int(round((len(_BARS) - 1) * value / peak))
        out.append(_BARS[max(0, min(len(_BARS) - 1, level))])
    return "".join(out)
