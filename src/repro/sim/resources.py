"""Shared-resource primitives built on the event kernel.

Three primitives cover every contention point in Howsim:

* :class:`Server` — a capacity-limited resource with FIFO admission
  (CPUs, DMA engines, switch ports, disk arms).
* :class:`Store` — a bounded FIFO buffer of items with blocking put/get
  (message queues, OS communication buffers, shared block queues).
* :class:`Mutex` — a convenience single-slot :class:`Server`.

All waiting is strictly FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .core import Event, Process, SimulationError, Simulator

__all__ = ["Server", "Mutex", "Store", "ProcessPool"]


class Server:
    """A resource with ``capacity`` identical slots and a FIFO queue.

    Usage from a process::

        grant = server.request()
        yield grant
        try:
            yield sim.timeout(service_time)
        finally:
            server.release()

    or, more conveniently, :meth:`serve`::

        yield from server.serve(service_time)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"Server capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        if sim.invariants.enabled:
            # Armed runs sweep every server for occupancy/queue/
            # utilization bounds; registration is construction-time
            # only, so the disarmed request/release paths are untouched.
            sim.invariants.watch_server(self)
        self._waiting: Deque[Event] = deque()
        # accounting
        self._busy_time = 0.0
        self._busy_since: Optional[float] = None
        self.total_requests = 0

    # -- accounting -------------------------------------------------------
    def _note_busy_edge(self, starting: bool) -> None:
        if starting and self.in_use == 1:
            self._busy_since = self.sim.now
        elif not starting and self.in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def busy_time(self) -> float:
        """Total time during which at least one slot was in use."""
        extra = 0.0
        if self._busy_since is not None:
            extra = self.sim.now - self._busy_since
        return self._busy_time + extra

    def utilization(self) -> float:
        """Fraction of elapsed time with at least one slot busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time() / self.sim.now

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    # -- core protocol ----------------------------------------------------
    def request(self) -> Event:
        """Return an event that fires once a slot is granted."""
        self.total_requests += 1
        grant = Event(self.sim)
        if self.in_use < self.capacity and not self._waiting:
            self.in_use += 1
            self._note_busy_edge(starting=True)
            grant.succeed()
        else:
            self._waiting.append(grant)
        return grant

    def release(self) -> None:
        """Free one slot, admitting the next waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"Server {self.name!r}: release without request")
        if self._waiting:
            grant = self._waiting.popleft()
            if grant._pooled:
                # serve()'s grants are pre-triggered pooled relays;
                # scheduling one is the succeed() equivalent (same
                # single heap push, same ordering).
                self.sim._schedule(grant)
            else:
                grant.succeed()  # slot transfers directly to the next waiter
        else:
            in_use = self.in_use - 1
            self.in_use = in_use
            if in_use == 0 and self._busy_since is not None:
                # _note_busy_edge(starting=False), inlined
                self._busy_time += self.sim.now - self._busy_since
                self._busy_since = None

    def serve(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire a slot, hold it for ``duration``, release it.

        The grant is a kernel-pooled relay rather than a fresh Event:
        unlike :meth:`request`'s return value it is never exposed to the
        caller, so the fast loop can recycle it the moment it fires.
        """
        sim = self.sim
        self.total_requests += 1
        grant = sim._relay()
        if self.in_use < self.capacity and not self._waiting:
            in_use = self.in_use + 1
            self.in_use = in_use
            if in_use == 1:    # _note_busy_edge(starting=True), inlined
                self._busy_since = sim.now
            sim._schedule(grant)
        else:
            self._waiting.append(grant)
        yield grant
        try:
            yield sim.pause(duration)
        finally:
            self.release()


class Mutex(Server):
    """A single-slot :class:`Server`."""

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=1, name=name)


class Store:
    """A bounded FIFO of items with blocking ``put``/``get``.

    ``capacity`` may be ``None`` for an unbounded store. Both producers and
    consumers queue FIFO, so ordering is deterministic.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .value = item
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a put would block."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been accepted."""
        self.total_put += 1
        done = Event(self.sim)
        if self._getters:
            # Hand the item straight to the longest-waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_got += 1
            done.succeed()
        elif not self.is_full:
            self.items.append(item)
            done.succeed()
        else:
            done.value = item
            self._putters.append(done)
        return done

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters or not self.is_full:
            self.put(item)
            return True
        return False

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        got = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            self.total_got += 1
            self._admit_putter()
            got.succeed(item)
        elif self._putters:
            # Zero-capacity style rendezvous: take directly from a putter.
            putter = self._putters.popleft()
            self.total_got += 1
            item, putter.value = putter.value, None
            putter.succeed()
            got.succeed(item)
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(True, item)`` or ``(False, None)``."""
        if self.items or self._putters:
            event = self.get()
            return True, event.value
        return False, None

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            putter = self._putters.popleft()
            item, putter.value = putter.value, None
            self.items.append(item)
            putter.succeed()


class ProcessPool:
    """Track a group of processes and wait for all of them to finish."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.processes: List[Process] = []

    def spawn(self, generator, name: Optional[str] = None) -> Process:
        """Start and track a process."""
        process = self.sim.process(generator, name=name)
        self.processes.append(process)
        return process

    def all_done(self) -> Event:
        """Event that fires when every tracked process has finished."""
        return self.sim.all_of(self.processes)
