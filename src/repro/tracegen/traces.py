"""Trace records: the Howsim workload format, derived from task programs.

Howsim's workload was a trace of processing times and I/O requests per
task. This module expands a :class:`~repro.arch.program.TaskProgram` into
exactly that — an ordered stream of :class:`TraceRecord` per worker —
which serves four purposes:

* it documents what the machine engines execute, in the paper's own
  terms;
* tests cross-check the engines' byte/time accounting against the trace
  totals;
* the trace-replay example shows the workload a single disk unit sees;
* the open-loop traffic generator (:mod:`repro.traffic`) folds each
  session's records into a byte/compute demand profile.

Everything here is *streaming*: :func:`worker_trace` is a generator, a
whole session's records (:func:`session_trace`) are a lazy round-robin
interleave of its per-worker generators, and :func:`fold_totals`
aggregates any record stream in O(1) memory. No function in this module
materializes a trace — which is what keeps memory flat when tens of
thousands of concurrent sessions stream their workloads through the
traffic engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence

from ..arch.program import Phase, TaskProgram
from ..host.cpu import REFERENCE_MHZ

__all__ = ["TraceRecord", "worker_trace", "stream_worker_trace",
           "trace_totals", "fold_totals", "interleave_records",
           "session_trace", "session_totals"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``op`` is one of ``compute`` (seconds at the reference clock in
    ``seconds``), ``read``, ``write``, ``send_peer`` or ``send_frontend``
    (bytes in ``nbytes``). ``phase`` and ``label`` locate the entry.
    """

    op: str
    phase: str
    label: str = ""
    seconds: float = 0.0
    nbytes: int = 0


def stream_worker_trace(program: TaskProgram, worker: int, workers: int,
                        block_bytes: int = 256 * 1024
                        ) -> Iterator[TraceRecord]:
    """Yield the trace one worker executes for ``program``.

    Receiver-side work (append/build costs for shuffled bytes) is traced
    at the worker under steady state: with a uniform shuffle each worker
    receives as many bytes as it repartitions.
    """
    if not 0 <= worker < workers:
        raise ValueError(f"worker {worker} out of range 0..{workers - 1}")
    for phase in program.phases:
        share = phase.read_bytes_total // workers
        if worker < phase.read_bytes_total % workers:
            share += 1
        remaining = share
        shuffled = 0
        fronted = 0
        written = 0
        while remaining > 0:
            nbytes = min(block_bytes, remaining)
            remaining -= nbytes
            yield TraceRecord("read", phase.name, nbytes=nbytes)
            for comp in phase.cpu:
                yield TraceRecord(
                    "compute", phase.name, comp.label,
                    seconds=comp.ns_per_byte * 1e-9 * nbytes)
            shuffled += int(nbytes * phase.shuffle_fraction)
            fronted += int(nbytes * phase.frontend_fraction)
            written += int(nbytes * phase.write_fraction)
            while shuffled >= block_bytes:
                shuffled -= block_bytes
                yield TraceRecord("send_peer", phase.name,
                                  nbytes=block_bytes)
            while fronted >= block_bytes:
                fronted -= block_bytes
                yield TraceRecord("send_frontend", phase.name,
                                  nbytes=block_bytes)
            while written >= block_bytes:
                written -= block_bytes
                yield TraceRecord("write", phase.name, nbytes=block_bytes)
        shuffled += phase.shuffle_fixed_per_worker
        fronted += phase.frontend_fixed_per_worker
        if shuffled > 0:
            yield TraceRecord("send_peer", phase.name, nbytes=shuffled)
        if fronted > 0:
            yield TraceRecord("send_frontend", phase.name, nbytes=fronted)
        if written > 0:
            yield TraceRecord("write", phase.name, nbytes=written)
        # Steady-state receiver work for this worker's incoming share.
        incoming = int(share * phase.shuffle_fraction) \
            + phase.shuffle_fixed_per_worker
        if incoming > 0:
            for comp in phase.recv:
                yield TraceRecord(
                    "compute", phase.name, comp.label,
                    seconds=comp.ns_per_byte * 1e-9 * incoming)
            recv_write = int(incoming * phase.recv_write_fraction)
            if recv_write > 0:
                yield TraceRecord("write", phase.name, nbytes=recv_write)


def worker_trace(program: TaskProgram, worker: int, workers: int,
                 block_bytes: int = 256 * 1024) -> Iterator[TraceRecord]:
    """Lazy per-worker trace; the long-standing public spelling.

    Identical record-for-record to :func:`stream_worker_trace`, which
    holds the expansion logic.
    """
    return stream_worker_trace(program, worker, workers, block_bytes)


def fold_totals(records: Iterable[TraceRecord],
                totals: Optional[Dict] = None) -> Dict:
    """Aggregate any record stream into totals per operation, O(1) memory.

    Pass an existing ``totals`` dict to accumulate across several streams
    (e.g. every worker of a session, or every session of a tenant).
    """
    if totals is None:
        totals = {"compute_seconds": 0.0, "read_bytes": 0, "write_bytes": 0,
                  "peer_bytes": 0, "frontend_bytes": 0, "records": 0}
    for record in records:
        totals["records"] += 1
        if record.op == "compute":
            totals["compute_seconds"] += record.seconds
        elif record.op == "read":
            totals["read_bytes"] += record.nbytes
        elif record.op == "write":
            totals["write_bytes"] += record.nbytes
        elif record.op == "send_peer":
            totals["peer_bytes"] += record.nbytes
        elif record.op == "send_frontend":
            totals["frontend_bytes"] += record.nbytes
    return totals


def trace_totals(program: TaskProgram, worker: int, workers: int,
                 block_bytes: int = 256 * 1024) -> dict:
    """Aggregate a worker trace into totals per operation."""
    return fold_totals(worker_trace(program, worker, workers, block_bytes))


def interleave_records(streams: Sequence[Iterator[TraceRecord]]
                       ) -> Iterator[TraceRecord]:
    """Round-robin merge of record streams, one record per turn.

    Models concurrent workers making block-granularity progress side by
    side. Memory is O(streams): only the generator frames live, never
    their expanded records.
    """
    active = deque(iter(stream) for stream in streams)
    while active:
        stream = active.popleft()
        try:
            record = next(stream)
        except StopIteration:
            continue
        active.append(stream)
        yield record


def session_trace(program: TaskProgram, workers: int,
                  block_bytes: int = 256 * 1024) -> Iterator[TraceRecord]:
    """Lazily yield one session's full trace across all its workers.

    A *session* is one query admitted by the traffic layer: ``program``
    executed by ``workers`` units concurrently. The per-worker streams
    are interleaved round-robin, so consuming the result touches one
    block-sized record at a time regardless of dataset scale.
    """
    return interleave_records(
        [stream_worker_trace(program, worker, workers, block_bytes)
         for worker in range(workers)])


def session_totals(program: TaskProgram, workers: int,
                   block_bytes: int = 256 * 1024) -> Dict:
    """Fold a whole session's streamed trace into byte/compute totals."""
    return fold_totals(session_trace(program, workers, block_bytes))
