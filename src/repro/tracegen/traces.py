"""Trace records: the Howsim workload format, derived from task programs.

Howsim's workload was a trace of processing times and I/O requests per
task. This module expands a :class:`~repro.arch.program.TaskProgram` into
exactly that — an ordered list of :class:`TraceRecord` per worker — which
serves three purposes:

* it documents what the machine engines execute, in the paper's own
  terms;
* tests cross-check the engines' byte/time accounting against the trace
  totals;
* the trace-replay example shows the workload a single disk unit sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..arch.program import Phase, TaskProgram
from ..host.cpu import REFERENCE_MHZ

__all__ = ["TraceRecord", "worker_trace", "trace_totals"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``op`` is one of ``compute`` (seconds at the reference clock in
    ``seconds``), ``read``, ``write``, ``send_peer`` or ``send_frontend``
    (bytes in ``nbytes``). ``phase`` and ``label`` locate the entry.
    """

    op: str
    phase: str
    label: str = ""
    seconds: float = 0.0
    nbytes: int = 0


def worker_trace(program: TaskProgram, worker: int, workers: int,
                 block_bytes: int = 256 * 1024) -> Iterator[TraceRecord]:
    """Yield the trace one worker executes for ``program``.

    Receiver-side work (append/build costs for shuffled bytes) is traced
    at the worker under steady state: with a uniform shuffle each worker
    receives as many bytes as it repartitions.
    """
    if not 0 <= worker < workers:
        raise ValueError(f"worker {worker} out of range 0..{workers - 1}")
    for phase in program.phases:
        share = phase.read_bytes_total // workers
        if worker < phase.read_bytes_total % workers:
            share += 1
        remaining = share
        shuffled = 0
        fronted = 0
        written = 0
        while remaining > 0:
            nbytes = min(block_bytes, remaining)
            remaining -= nbytes
            yield TraceRecord("read", phase.name, nbytes=nbytes)
            for comp in phase.cpu:
                yield TraceRecord(
                    "compute", phase.name, comp.label,
                    seconds=comp.ns_per_byte * 1e-9 * nbytes)
            shuffled += int(nbytes * phase.shuffle_fraction)
            fronted += int(nbytes * phase.frontend_fraction)
            written += int(nbytes * phase.write_fraction)
            while shuffled >= block_bytes:
                shuffled -= block_bytes
                yield TraceRecord("send_peer", phase.name,
                                  nbytes=block_bytes)
            while fronted >= block_bytes:
                fronted -= block_bytes
                yield TraceRecord("send_frontend", phase.name,
                                  nbytes=block_bytes)
            while written >= block_bytes:
                written -= block_bytes
                yield TraceRecord("write", phase.name, nbytes=block_bytes)
        shuffled += phase.shuffle_fixed_per_worker
        fronted += phase.frontend_fixed_per_worker
        if shuffled > 0:
            yield TraceRecord("send_peer", phase.name, nbytes=shuffled)
        if fronted > 0:
            yield TraceRecord("send_frontend", phase.name, nbytes=fronted)
        if written > 0:
            yield TraceRecord("write", phase.name, nbytes=written)
        # Steady-state receiver work for this worker's incoming share.
        incoming = int(share * phase.shuffle_fraction) \
            + phase.shuffle_fixed_per_worker
        if incoming > 0:
            for comp in phase.recv:
                yield TraceRecord(
                    "compute", phase.name, comp.label,
                    seconds=comp.ns_per_byte * 1e-9 * incoming)
            recv_write = int(incoming * phase.recv_write_fraction)
            if recv_write > 0:
                yield TraceRecord("write", phase.name, nbytes=recv_write)


def trace_totals(program: TaskProgram, worker: int, workers: int,
                 block_bytes: int = 256 * 1024) -> dict:
    """Aggregate a worker trace into totals per operation."""
    totals = {"compute_seconds": 0.0, "read_bytes": 0, "write_bytes": 0,
              "peer_bytes": 0, "frontend_bytes": 0, "records": 0}
    for record in worker_trace(program, worker, workers, block_bytes):
        totals["records"] += 1
        if record.op == "compute":
            totals["compute_seconds"] += record.seconds
        elif record.op == "read":
            totals["read_bytes"] += record.nbytes
        elif record.op == "write":
            totals["write_bytes"] += record.nbytes
        elif record.op == "send_peer":
            totals["peer_bytes"] += record.nbytes
        elif record.op == "send_frontend":
            totals["frontend_bytes"] += record.nbytes
    return totals
