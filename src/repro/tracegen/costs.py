"""Per-task CPU cost models (the trace-acquisition substitute).

The paper acquired per-task processing-time traces by running each
algorithm on a DEC Alpha 2100 4/275 and replayed them in Howsim, scaling
by processor speed. We replace that machine with an *analytic* cost model:
every task is assigned per-byte costs (nanoseconds per input byte at the
275 MHz reference clock, see :data:`~repro.host.cpu.REFERENCE_MHZ`),
chosen once, globally, to reproduce the absolute throughputs implied by
the paper's own measurements:

* a 200 MHz Active Disk processor scans/filters at ~13 MB/s (select on a
  16-disk farm takes about as long as the FC-bound SMP, Figure 1a);
* sort's phase-1 work (partition + append + run sort) sustains ~3 MB/s
  per 200 MHz disk, which is what makes 64-disk configurations compute-
  bound and 128-disk configurations interconnect-bound (Figure 3b);
* run sorting cost falls ~7 % when run count halves (Section 4.3's
  40x25 MB -> 20x50 MB observation), giving the
  ``1 + 0.1 * log2(runs)`` shape used by :func:`sort_cpu_ns`.

Every constant is documented with the behaviour it is calibrated against;
the test suite pins the resulting ratios to the paper's reported bands.
"""

from __future__ import annotations

from math import log2

__all__ = [
    "SELECT_FILTER_NS", "AGGREGATE_SUM_NS", "GROUPBY_HASH_NS",
    "GROUPBY_MERGE_NS", "SORT_PARTITION_NS", "SORT_APPEND_NS",
    "SORT_RUN_BASE_NS", "SORT_MERGE_NS", "JOIN_PROJECT_NS",
    "JOIN_BUILD_PROBE_NS", "DMINE_COUNT_NS", "DMINE_MERGE_NS",
    "DCUBE_HASH_NS", "DCUBE_MERGE_NS", "DCUBE_PARTITION_NS",
    "CLUSTER_COPY_NS", "MVIEW_SCAN_NS",
    "MVIEW_APPLY_NS", "MVIEW_MERGE_NS",
    "sort_cpu_ns",
]

#: select: predicate evaluation + stream management per 64 B tuple.
#: Calibrated: 16-disk Active Disk select ~ FC-bound SMP select (Fig. 1a).
SELECT_FILTER_NS = 68.0

#: aggregate: SUM accumulation; slightly cheaper than select's copy-out.
AGGREGATE_SUM_NS = 65.0

#: groupby: hash lookup + aggregate update per 64 B tuple.
GROUPBY_HASH_NS = 80.0

#: groupby: merging partial group tables at the front-end.
GROUPBY_MERGE_NS = 8.0

#: sort phase 1 at the reading disk: examine key, pick partition, copy
#: into the outgoing stream buffer.
SORT_PARTITION_NS = 30.0

#: sort phase 1 at the receiving disk: collect tuples into run buffers.
SORT_APPEND_NS = 25.0

#: sort phase 1: run formation (quicksort) base cost; scaled by run count
#: via :func:`sort_cpu_ns`. Together with partition+append this puts a
#: 200 MHz disk at ~3 MB/s for phase 1 (Fig. 3b crossover at 64 disks).
SORT_RUN_BASE_NS = 120.0

#: sort phase 2: heap merge of sorted runs.
SORT_MERGE_NS = 90.0

#: join: projection (64 B -> 32 B) while scanning both relations.
JOIN_PROJECT_NS = 30.0

#: join: hash build + probe per received (projected) byte.
JOIN_BUILD_PROBE_NS = 110.0

#: dmine: per-pass itemset counting (hash per item, ~4 items/53 B txn).
DMINE_COUNT_NS = 100.0

#: dmine: merging candidate counters at the front-end.
DMINE_MERGE_NS = 8.0

#: dcube: hashing a tuple into the pipeline of group-by tables.
DCUBE_HASH_NS = 110.0

#: dcube on clusters: parsing/partitioning a tuple before the shuffle
#: (the cluster hash-partitions the input so each node owns a table
#: partition; Active Disk disklets aggregate locally instead).
DCUBE_PARTITION_NS = 12.0

#: Extra kernel/buffer-copy cost the full-function cluster OS pays per
#: byte moved through a node (disk reads/writes and message endpoints).
#: Active Disk disklets process data in place in DiskOS stream buffers —
#: the paper's "significantly easier to implement and optimize" point.
CLUSTER_COPY_NS = 10.0

#: dcube: merging spilled partial hash tables at the front-end.
DCUBE_MERGE_NS = 14.0

#: mview: scanning base relations + deltas, locating affected tuples.
MVIEW_SCAN_NS = 40.0

#: mview: applying a delta at the owning worker (per received byte).
MVIEW_APPLY_NS = 60.0

#: mview: merging updates into the derived relations (phase 2).
MVIEW_MERGE_NS = 90.0


def sort_cpu_ns(num_runs: int, base_ns: float = SORT_RUN_BASE_NS) -> float:
    """Run-formation cost per byte as a function of run count.

    More, shorter runs cost slightly more CPU (per Section 4.3: halving
    the run count cut CPU by ~7 %); ``1 + 0.1*log2(runs)`` reproduces
    that measurement at the paper's operating point (40 vs 20 runs).
    """
    if num_runs < 1:
        raise ValueError(f"need at least one run, got {num_runs}")
    return base_ns * (1.0 + 0.1 * log2(max(1, num_runs)))
