"""Analytic trace generation (the DEC Alpha trace-acquisition substitute)."""

from .costs import (
    AGGREGATE_SUM_NS,
    DCUBE_HASH_NS,
    DCUBE_MERGE_NS,
    DMINE_COUNT_NS,
    DMINE_MERGE_NS,
    GROUPBY_HASH_NS,
    GROUPBY_MERGE_NS,
    JOIN_BUILD_PROBE_NS,
    JOIN_PROJECT_NS,
    MVIEW_APPLY_NS,
    MVIEW_MERGE_NS,
    MVIEW_SCAN_NS,
    SELECT_FILTER_NS,
    SORT_APPEND_NS,
    SORT_MERGE_NS,
    SORT_PARTITION_NS,
    SORT_RUN_BASE_NS,
    sort_cpu_ns,
)
from .traces import (
    TraceRecord,
    fold_totals,
    interleave_records,
    session_totals,
    session_trace,
    stream_worker_trace,
    trace_totals,
    worker_trace,
)

__all__ = [
    "SELECT_FILTER_NS", "AGGREGATE_SUM_NS", "GROUPBY_HASH_NS",
    "GROUPBY_MERGE_NS", "SORT_PARTITION_NS", "SORT_APPEND_NS",
    "SORT_RUN_BASE_NS", "SORT_MERGE_NS", "JOIN_PROJECT_NS",
    "JOIN_BUILD_PROBE_NS", "DMINE_COUNT_NS", "DMINE_MERGE_NS",
    "DCUBE_HASH_NS", "DCUBE_MERGE_NS", "MVIEW_SCAN_NS", "MVIEW_APPLY_NS",
    "MVIEW_MERGE_NS", "sort_cpu_ns",
    "TraceRecord", "worker_trace", "stream_worker_trace", "trace_totals",
    "fold_totals", "interleave_records", "session_trace", "session_totals",
]
