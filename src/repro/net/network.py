"""Message transport over the fat-tree: per-link serialization + hop latency.

A message from host *s* to host *d* crosses, in order:

1. the sender's access link (serialized at 100 Mb/s),
2. for hosts behind different leaves: a leaf uplink and the destination
   leaf's downlink (each a GbE :class:`~repro.interconnect.BusGroup`),
3. the receiver's access link.

Each link is held for its own serialization time (message-level
store-and-forward, like the paper's Netsim); per-switch cut-through
latency is added per hop. Under load — the regime the experiments care
about — this yields exactly the right per-link utilizations and endpoint
congestion behaviour (e.g., the group-by front-end bottleneck in
Figure 1).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..faults.policies import RetryPolicy
from ..sim import Counter, Event, Simulator, Tally
from .topology import EthernetParams, FatTree

__all__ = ["Network"]

#: Backoff for TCP-style retransmits after a lost message.
NET_RETRY = RetryPolicy(max_attempts=6, base_delay=200e-6, factor=2.0,
                        max_delay=20e-3)


class Network:
    """Point-to-point transport over a :class:`FatTree`.

    ``mtu``: when ``None`` (default — and what the paper-replication
    experiments use, matching Netsim's message-level model), a message
    occupies each link on its path for its full serialization time in
    sequence. When set, messages fragment into MTU-sized frames that
    pipeline across the path, which recovers full wire rate for single
    blocking streams at the cost of more simulation events. Aggregate
    throughputs under load are identical either way.
    """

    def __init__(self, tree: FatTree, mtu: Optional[int] = None):
        if mtu is not None and mtu < 512:
            raise ValueError(f"mtu must be >= 512 bytes, got {mtu}")
        self.tree = tree
        self.sim = tree.sim
        self.mtu = mtu
        self.messages = Counter("net.messages")
        self.bytes = Counter("net.bytes")
        self.latencies = Tally("net.latency")
        self.in_flight = 0
        tel = self.sim.telemetry
        if tel.enabled:
            tel.registry.bind("net.messages.in_flight",
                              lambda: float(self.in_flight))
        # Fabric-wide port ("net": packet loss / link flap for everyone)
        # plus one per host NIC ("net.host<i>"), registered eagerly so
        # the plan can be armed before the run starts.
        self.faults = None
        self._host_faults = []
        if self.sim.faults.enabled:
            self.faults = self.sim.faults.register("net")
            self._host_faults = [
                self.sim.faults.register(f"net.host{i}")
                for i in range(tree.num_hosts)
            ]

    def _endpoint_faults(self, src: int, dst: int):
        """Fault ports a message from src to dst is exposed to."""
        return (self.faults, self._host_faults[src], self._host_faults[dst])

    def _fault_delays(self, src: int, dst: int):
        """Hold the message while any involved link is flapping."""
        for port in self._endpoint_faults(src, dst):
            if port.active:
                yield from port.wait_out(self.sim, kinds=("link_flap",),
                                         counter="faults.net.flap_waits")

    def _retransmits(self, src: int, dst: int, nbytes: int):
        """TCP-style bounded retransmits while packet loss is active."""
        survive = 1.0
        for port in self._endpoint_faults(src, dst):
            if port.active:
                survive *= 1.0 - port.probability("packet_loss")
        loss = 1.0 - survive
        if loss <= 0:
            return
        rng = self.faults.rng
        # A lost message costs a backoff plus re-sending one transfer
        # unit (the whole message, or one frame in MTU mode).
        unit = nbytes if self.mtu is None else min(nbytes, self.mtu)
        for attempt in range(NET_RETRY.max_attempts):
            if rng.random() >= loss:
                return
            self.faults.note("faults.net.lost_messages")
            self.faults.note("faults.net.retransmits")
            yield self.sim.timeout(NET_RETRY.delay(attempt))
            yield from self._path_hop(src, dst, unit)
        self.faults.note("faults.net.retry_exhausted")

    def _path_hop(self, src: int, dst: int, nbytes: int):
        """One store-and-forward traversal of the path for one unit."""
        tree = self.tree
        sport = tree.port(src)
        dport = tree.port(dst)
        yield from sport.tx.transfer(nbytes)
        hops = tree.hop_count(src, dst)
        latency = hops * tree.params.switch_latency
        if latency > 0:
            yield self.sim.pause(latency)
        if sport.leaf != dport.leaf:
            yield from tree.leaves[sport.leaf].up.transfer(nbytes)
            yield from tree.leaves[dport.leaf].down.transfer(nbytes)
        yield from dport.rx.transfer(nbytes)

    def transfer(self, src: int, dst: int,
                 nbytes: int) -> Generator[Event, Any, None]:
        """Deliver ``nbytes`` from ``src`` to ``dst`` (blocking generator).

        Local delivery (``src == dst``) is free: the data never leaves the
        host's memory.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        began = self.sim.now
        self.in_flight += 1
        try:
            if src != dst and nbytes > 0:
                if self.faults is not None:
                    yield from self._fault_delays(src, dst)
                if self.mtu is None or nbytes <= self.mtu:
                    yield from self._path_hop(src, dst, nbytes)
                else:
                    frames = []
                    remaining = nbytes
                    while remaining > 0:
                        frame = min(self.mtu, remaining)
                        remaining -= frame
                        frames.append(self.sim.process(
                            self._path_hop(src, dst, frame), name="frame"))
                    yield self.sim.all_of(frames)
                if self.faults is not None:
                    yield from self._retransmits(src, dst, nbytes)
        finally:
            self.in_flight -= 1
        self.messages.add()
        self.bytes.add(nbytes)
        latency = self.sim.now - began
        self.latencies.observe(latency)
        tel = self.sim.telemetry
        if tel.enabled and src != dst and nbytes > 0:
            tel.spans.complete(
                "net", f"msg {src}->{dst}", f"net.host{src}.tx",
                began, latency, args={"nbytes": nbytes})
            tel.registry.counter("net.bytes").add(nbytes)
            tel.registry.histogram("net.latency").observe(latency)
