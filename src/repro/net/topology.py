"""Cluster network topology: two-level switched Ethernet fat-tree.

The paper's cluster uses 24-port 100BaseT switches (3Com SuperStack II
3900) with two Gigabit-Ethernet uplinks each, feeding a Gigabit core
switch (SuperStack II 9300). The 16-host configuration hangs off a single
switch; larger configurations use an array of leaf switches, so the
bisection bandwidth grows with the cluster while each host keeps a fixed
100 Mb/s (12.5 MB/s) access link.

Every directed link is a :class:`~repro.interconnect.SerialBus`; hosts get
separate transmit and receive links (full-duplex 100BaseT), leaf switches
get a pair of GbE uplinks per direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..interconnect import BusGroup, SerialBus
from ..sim import Simulator

__all__ = ["EthernetParams", "HostPort", "LeafSwitch", "FatTree"]

MB = 1_000_000
Mb = 125_000  # one megabit per second, in bytes/s


@dataclass(frozen=True)
class EthernetParams:
    """Tunable constants of the switched-Ethernet fabric."""

    host_link_rate: float = 100 * Mb          # 100BaseT access link
    uplink_rate: float = 1000 * Mb            # GbE uplink
    uplinks_per_leaf: int = 2
    hosts_per_leaf: int = 16                  # paper: 16 hosts on one switch
    switch_latency: float = 10e-6             # per-hop cut-through latency
    wire_startup: float = 5e-6                # per-message framing cost


@dataclass
class HostPort:
    """A host's full-duplex access port: one tx and one rx link."""

    host: int
    tx: SerialBus
    rx: SerialBus
    leaf: int


@dataclass
class LeafSwitch:
    """One edge switch with GbE uplink groups toward the core."""

    index: int
    hosts: List[int]
    up: BusGroup
    down: BusGroup


class FatTree:
    """The two-level topology: hosts -> leaf switches -> GbE core."""

    def __init__(self, sim: Simulator, num_hosts: int,
                 params: Optional[EthernetParams] = None):
        if num_hosts < 1:
            raise ValueError(f"need at least one host, got {num_hosts}")
        self.sim = sim
        self.params = params or EthernetParams()
        self.num_hosts = num_hosts
        self.ports: List[HostPort] = []
        self.leaves: List[LeafSwitch] = []
        self._build()

    def _build(self) -> None:
        p = self.params
        num_leaves = (self.num_hosts + p.hosts_per_leaf - 1) // p.hosts_per_leaf
        for leaf in range(num_leaves):
            first = leaf * p.hosts_per_leaf
            hosts = list(range(first,
                               min(first + p.hosts_per_leaf, self.num_hosts)))
            up = BusGroup(
                [SerialBus(self.sim, p.uplink_rate, p.wire_startup,
                           name=f"leaf{leaf}.up{i}")
                 for i in range(p.uplinks_per_leaf)],
                name=f"leaf{leaf}.up")
            down = BusGroup(
                [SerialBus(self.sim, p.uplink_rate, p.wire_startup,
                           name=f"leaf{leaf}.down{i}")
                 for i in range(p.uplinks_per_leaf)],
                name=f"leaf{leaf}.down")
            self.leaves.append(LeafSwitch(leaf, hosts, up, down))
            for host in hosts:
                self.ports.append(HostPort(
                    host=host,
                    tx=SerialBus(self.sim, p.host_link_rate, p.wire_startup,
                                 name=f"host{host}.tx"),
                    rx=SerialBus(self.sim, p.host_link_rate, p.wire_startup,
                                 name=f"host{host}.rx"),
                    leaf=leaf,
                ))

    @property
    def single_switch(self) -> bool:
        """True when the whole cluster fits behind one leaf (16 hosts)."""
        return len(self.leaves) == 1

    def port(self, host: int) -> HostPort:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return self.ports[host]

    def same_leaf(self, a: int, b: int) -> bool:
        return self.port(a).leaf == self.port(b).leaf

    def hop_count(self, src: int, dst: int) -> int:
        """Switch hops between two hosts (1 same leaf, 3 across the core)."""
        return 1 if self.same_leaf(src, dst) else 3

    def bytes_moved(self) -> float:
        """Total bytes carried by all host access links (tx side)."""
        return sum(port.tx.bytes_moved.value for port in self.ports)
