"""MPI-like user-space messaging: async send/recv, barriers, reductions.

Models the BSPlib-style library the paper assumes on clusters: pinned
buffers, asynchronous operations and global synchronization. Messages are
(src, tag, nbytes, payload) tuples; payloads are opaque simulation
metadata (no actual data bytes are shuffled — only their costs).

CPU overheads: each send and each receive completion charges a fixed
software overhead on the caller's CPU when a per-host CPU server list is
supplied (the cluster host model does), mirroring how Howsim charged
user-space messaging costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..faults.policies import RetryPolicy, TimeoutPolicy
from ..sim import Event, Server, Simulator
from .network import Network

__all__ = ["Message", "Mailbox", "Messaging", "ANY_TAG"]

#: Host-level ack deadline per reliable-send attempt.
SEND_TIMEOUT = TimeoutPolicy(timeout=50e-3, factor=2.0, max_timeout=1.0)
#: Bounded resend schedule for reliable sends.
SEND_RETRY = RetryPolicy(max_attempts=4, base_delay=5e-3, factor=2.0,
                         max_delay=100e-3)

#: Wildcard receive tag (matches any message), like MPI_ANY_TAG.
ANY_TAG = object()


@dataclass(frozen=True, slots=True)
class Message:
    """One delivered message."""

    src: int
    dst: int
    tag: Any
    nbytes: int
    payload: Any = None


class Mailbox:
    """Per-host tag-matched receive queue."""

    def __init__(self, sim: Simulator, host: int):
        self.sim = sim
        self.host = host
        self._messages: Deque[Message] = deque()
        self._waiters: Deque[Tuple[Any, Event]] = deque()

    def deliver(self, message: Message) -> None:
        """Called by the transport when a message fully arrives."""
        for i, (tag, event) in enumerate(self._waiters):
            if tag is ANY_TAG or tag == message.tag:
                del self._waiters[i]
                event.succeed(message)
                return
        self._messages.append(message)

    def receive(self, tag: Any = ANY_TAG) -> Event:
        """Event that fires with the next message matching ``tag``."""
        got = Event(self.sim)
        for i, message in enumerate(self._messages):
            if tag is ANY_TAG or tag == message.tag:
                del self._messages[i]
                got.succeed(message)
                return got
        self._waiters.append((tag, got))
        return got

    def pending(self) -> int:
        return len(self._messages)


class Messaging:
    """Async messaging over a :class:`Network`, with global operations."""

    def __init__(self, network: Network, num_hosts: int,
                 send_overhead: float = 30e-6,
                 recv_overhead: float = 30e-6,
                 cpus: Optional[List[Server]] = None):
        self.network = network
        self.sim = network.sim
        self.num_hosts = num_hosts
        self.send_overhead = send_overhead
        self.recv_overhead = recv_overhead
        self.cpus = cpus
        self.mailboxes = [Mailbox(self.sim, h) for h in range(num_hosts)]
        self._barrier_waiting: Dict[Any, List[Event]] = {}
        self._audit = None
        if self.sim.invariants.enabled:
            self._audit = self.sim.invariants.messaging_auditor(
                "net.messaging", num_hosts)

    def _charge_cpu(self, host: int,
                    seconds: float) -> Generator[Event, Any, None]:
        if self.cpus is not None and seconds > 0:
            yield from self.cpus[host].serve(seconds)
        elif seconds > 0:
            yield self.sim.pause(seconds)

    # -- point to point -----------------------------------------------------
    def isend(self, src: int, dst: int, tag: Any, nbytes: int,
              payload: Any = None) -> Event:
        """Start an asynchronous send; the event fires on delivery."""

        def _send() -> Generator[Event, Any, None]:
            began = self.sim.now
            yield from self._charge_cpu(src, self.send_overhead)
            yield from self.network.transfer(src, dst, nbytes)
            self.mailboxes[dst].deliver(
                Message(src, dst, tag, nbytes, payload))
            tel = self.sim.telemetry
            if tel.enabled:
                tel.spans.complete(
                    "net", f"send {src}->{dst}", f"net.msg.host{src}",
                    began, self.sim.now - began, args={"nbytes": nbytes})
                tel.registry.counter("net.msg.sends").add()

        return self.sim.process(_send(), name=f"send{src}->{dst}")

    def send(self, src: int, dst: int, tag: Any, nbytes: int,
             payload: Any = None) -> Generator[Event, Any, None]:
        """Blocking send (generator): returns once delivered."""
        yield self.isend(src, dst, tag, nbytes, payload)

    def send_reliable(self, src: int, dst: int, tag: Any, nbytes: int,
                      payload: Any = None,
                      timeout: TimeoutPolicy = SEND_TIMEOUT,
                      retry: RetryPolicy = SEND_RETRY,
                      ) -> Generator[Event, Any, bool]:
        """Blocking send with an ack deadline and bounded resends.

        Each attempt is given ``timeout.timeout_for(attempt)`` simulated
        seconds to deliver (the transport's own loss recovery usually
        makes this moot; the deadline covers link flaps that outlast the
        retransmit budget). A timed-out attempt backs off per ``retry``
        and re-sends. Returns True once any attempt delivers, False if
        the retry budget runs dry — the caller decides what a lost
        message means. Late deliveries of timed-out attempts land in the
        destination mailbox as duplicates, exactly like a real resend
        protocol without sequence numbers.
        """
        attempt = 0
        faults = self.sim.faults
        while True:
            done = self.isend(src, dst, tag, nbytes, payload)
            deadline = self.sim.timeout(timeout.timeout_for(attempt))
            fired, _ = yield self.sim.any_of([done, deadline])
            if fired is done:
                if attempt > 0:
                    faults.note("faults.net.recovered_sends")
                return True
            attempt += 1
            faults.note("faults.net.send_timeouts")
            if attempt >= retry.max_attempts:
                faults.note("faults.net.aborted_sends")
                return False
            yield self.sim.timeout(retry.delay(attempt))

    def recv(self, host: int,
             tag: Any = ANY_TAG) -> Generator[Event, Any, Message]:
        """Blocking receive (generator): returns the matching message."""
        message = yield self.mailboxes[host].receive(tag)
        yield from self._charge_cpu(host, self.recv_overhead)
        return message

    def irecv(self, host: int, tag: Any = ANY_TAG) -> Event:
        """Asynchronous receive: event fires with the matching message."""
        return self.mailboxes[host].receive(tag)

    # -- collectives --------------------------------------------------------
    def barrier(self, host: int, key: Any,
                participants: int) -> Generator[Event, Any, None]:
        """Global barrier among ``participants`` hosts, identified by ``key``.

        Implemented as a central counter plus a broadcast release, with the
        wire cost approximated by two small-message hops (the real
        implementation's critical path).
        """
        if self._audit is not None:
            self._audit.join("barrier", key, host, participants)
        waiting = self._barrier_waiting.setdefault(key, [])
        release = Event(self.sim)
        waiting.append(release)
        if len(waiting) == participants:
            del self._barrier_waiting[key]
            tel = self.sim.telemetry
            if tel.enabled:
                tel.spans.instant("net", f"barrier {key}", "net.collectives",
                                  args={"participants": participants})
            cost = 2 * (64 / self.network.tree.params.host_link_rate
                        + self.network.tree.params.switch_latency)
            for event in waiting:
                self.sim.process(_delayed_succeed(self.sim, event, cost))
        yield release

    def reduce_to_root(self, host: int, root: int, nbytes: int,
                       key: Any) -> Generator[Event, Any, None]:
        """Each non-root sends ``nbytes`` to ``root``; root collects all."""
        if self._audit is not None:
            self._audit.join("reduce", key, host, self.num_hosts)
        if host == root:
            for _ in range(self.num_hosts - 1):
                yield from self.recv(host, tag=("reduce", key))
        else:
            yield from self.send(host, root, ("reduce", key), nbytes)

    def broadcast(self, host: int, root: int, nbytes: int,
                  key: Any) -> Generator[Event, Any, None]:
        """Binomial-tree broadcast of ``nbytes`` from ``root``.

        All hosts must call with the same ``key``. Implemented over
        rank-relative-to-root numbering so any root works.
        """
        if self._audit is not None:
            self._audit.join("bcast", key, host, self.num_hosts)
        n = self.num_hosts
        rank = (host - root) % n
        strides = []
        stride = 1
        while stride < n:
            strides.append(stride)
            stride *= 2
        for round_index, stride in enumerate(reversed(strides)):
            if rank % (2 * stride) == 0 and rank + stride < n:
                dst = (root + rank + stride) % n
                yield from self.send(host, dst,
                                     ("bc", key, round_index), nbytes)
            elif rank % (2 * stride) == stride:
                yield from self.recv(host, ("bc", key, round_index))

    def scatter(self, host: int, root: int, nbytes_each: int,
                key: Any) -> Generator[Event, Any, None]:
        """Root sends a distinct ``nbytes_each`` block to every host."""
        if self._audit is not None:
            self._audit.join("scatter", key, host, self.num_hosts)
        if host == root:
            for dst in range(self.num_hosts):
                if dst != root:
                    yield from self.send(host, dst, ("sc", key),
                                         nbytes_each)
        else:
            yield from self.recv(host, ("sc", key))

    def gather(self, host: int, root: int, nbytes_each: int,
               key: Any) -> Generator[Event, Any, None]:
        """Every host sends ``nbytes_each`` to the root."""
        if self._audit is not None:
            self._audit.join("gather", key, host, self.num_hosts)
        if host == root:
            for _ in range(self.num_hosts - 1):
                yield from self.recv(host, ("ga", key))
        else:
            yield from self.send(host, root, ("ga", key), nbytes_each)

    def tree_allreduce(self, host: int, nbytes: int,
                       key: Any) -> Generator[Event, Any, None]:
        """Binomial-tree reduce to host 0 followed by a tree broadcast.

        ``2 * log2(N)`` message rounds instead of the centralized
        reduce's ``N`` — the collective the cluster tasks use to merge
        candidate counters (dmine) without melting any single link.
        All ``num_hosts`` hosts must call this with the same ``key``.
        """
        if self._audit is not None:
            self._audit.join("allreduce", key, host, self.num_hosts)
        n = self.num_hosts
        # Reduce phase: at round r, hosts with bit r set send to the
        # partner with that bit cleared, then drop out.
        round_index = 0
        stride = 1
        while stride < n:
            if host % (2 * stride) == stride:
                yield from self.send(host, host - stride,
                                     ("ar-up", key, round_index), nbytes)
                break
            if host % (2 * stride) == 0 and host + stride < n:
                yield from self.recv(host, ("ar-up", key, round_index))
            stride *= 2
            round_index += 1
        # Broadcast phase: mirror image, from host 0 back down.
        strides = []
        stride = 1
        while stride < n:
            strides.append(stride)
            stride *= 2
        for round_index, stride in enumerate(reversed(strides)):
            if host % (2 * stride) == 0 and host + stride < n:
                yield from self.send(host, host + stride,
                                     ("ar-down", key, round_index), nbytes)
            elif host % (2 * stride) == stride:
                yield from self.recv(host, ("ar-down", key, round_index))


def _delayed_succeed(sim: Simulator, event: Event, delay: float):
    yield sim.timeout(delay)
    event.succeed()
