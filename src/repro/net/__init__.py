"""Netsim-style switched-network model and MPI-like messaging."""

from .messaging import ANY_TAG, Mailbox, Message, Messaging
from .network import Network
from .topology import EthernetParams, FatTree, HostPort, LeafSwitch

__all__ = [
    "EthernetParams", "FatTree", "HostPort", "LeafSwitch",
    "Network",
    "Messaging", "Message", "Mailbox", "ANY_TAG",
]
