"""What-if design-space exploration over the analytic model.

Answers procurement-style questions in milliseconds: across
architectures and farm sizes, which configurations meet a time budget
for a workload, and which of those is cheapest? Built entirely on the
closed-form :mod:`repro.analysis.bottleneck` model and the Table 1 cost
model, so whole frontiers evaluate instantly; the capacity-planner
example shows the simulate-to-verify step for the chosen point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.report import render_table
from ..experiments.runner import config_for
from .bottleneck import analyze
from .price_performance import configuration_price

__all__ = ["DesignPoint", "design_space", "pareto_frontier",
           "render_design_space"]


@dataclass(frozen=True)
class DesignPoint:
    """One (architecture, size) evaluated against a workload."""

    arch: str
    num_disks: int
    seconds: float               # analytic workload time
    price: float
    bottleneck: str

    @property
    def cost_seconds(self) -> float:
        return self.price * self.seconds


def design_space(tasks: Sequence[str],
                 sizes: Sequence[int] = (16, 32, 64, 128),
                 archs: Sequence[str] = ("active", "cluster", "smp"),
                 scale: float = 1.0) -> List[DesignPoint]:
    """Evaluate every (arch, size) against the summed workload time."""
    if not tasks:
        raise ValueError("design_space needs at least one task")
    points: List[DesignPoint] = []
    for arch in archs:
        for size in sizes:
            config = config_for(arch, size)
            estimates = [analyze(config, task, scale) for task in tasks]
            seconds = sum(e.seconds for e in estimates)
            # The workload's dominant bottleneck: the resource binding
            # the largest share of the total time.
            demand_totals: Dict[str, float] = {}
            for estimate in estimates:
                for phase in estimate.phases:
                    name = phase.bottleneck
                    demand_totals[name] = (demand_totals.get(name, 0.0)
                                           + phase.seconds)
            bottleneck = max(demand_totals, key=demand_totals.get)
            points.append(DesignPoint(
                arch=arch, num_disks=size, seconds=seconds,
                price=configuration_price(config),
                bottleneck=bottleneck))
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated on (time, price), sorted by time.

    A point dominates another when it is at least as fast *and* at least
    as cheap (strictly better on one axis).
    """
    frontier: List[DesignPoint] = []
    for candidate in sorted(points, key=lambda p: (p.seconds, p.price)):
        if not any(other.seconds <= candidate.seconds
                   and other.price <= candidate.price
                   and (other.seconds < candidate.seconds
                        or other.price < candidate.price)
                   for other in points):
            frontier.append(candidate)
    return frontier


def render_design_space(points: Sequence[DesignPoint],
                        budget_seconds: Optional[float] = None) -> str:
    """Table of points; frontier members and budget misses flagged."""
    frontier = set(id(p) for p in pareto_frontier(points))
    rows = []
    for point in sorted(points, key=lambda p: p.cost_seconds):
        flags = []
        if id(point) in frontier:
            flags.append("frontier")
        if budget_seconds is not None and point.seconds > budget_seconds:
            flags.append("over budget")
        rows.append((
            f"{point.arch}@{point.num_disks}",
            f"{point.seconds:,.0f}s",
            f"${point.price:,.0f}",
            point.bottleneck,
            " ".join(flags),
        ))
    title = "Design space (analytic)"
    if budget_seconds is not None:
        title += f" — budget {budget_seconds:,.0f}s"
    return render_table(title, ("config", "time", "price",
                                "bottleneck", ""), rows)
