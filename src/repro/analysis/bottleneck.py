"""Closed-form bottleneck analysis of task programs.

Keeton et al. (the IDISK paper) evaluated intelligent-disk architectures
analytically, from technology trends and per-application bandwidth
demands. This module implements that style of model over the same task
programs the simulator executes: for each phase it computes how long
every resource class would need if it were the only constraint, and
takes the maximum — a pipeline-bottleneck estimate with no simulation.

Uses:

* instant what-if estimates (`analyze(config, "sort")` runs in
  microseconds, the simulator in seconds);
* an independent cross-check of the discrete-event simulator — the test
  suite asserts the two agree within tolerance and, more importantly,
  that they identify the *same bottleneck resource*, which is the
  paper's actual story.

The model is deliberately first-order: FIFO queueing, perfect pipeline
overlap within a phase, no convoy effects. The simulator exists because
those second-order effects matter at the margins; the analysis exists
because the first-order terms explain the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch.config import (
    ActiveDiskConfig,
    ArchConfig,
    ClusterConfig,
    SMPConfig,
)
from ..arch.program import Phase, TaskProgram
from ..disk import DiskGeometry
from ..host.cpu import REFERENCE_MHZ
from ..interconnect.bus import FC_STARTUP_LATENCY
from ..tracegen.costs import CLUSTER_COPY_NS
from ..workloads import build_program

__all__ = ["PhaseEstimate", "AnalyticEstimate", "analyze",
           "analyze_program"]

MB = 1_000_000

#: Throughput retained by a drive whose request pattern interleaves
#: streams (read+write zones or more runs than cache segments): each
#: request pays positioning on top of its transfer.
INTERLEAVE_EFFICIENCY = 0.62


@dataclass(frozen=True)
class PhaseEstimate:
    """One phase: per-resource demands and the binding one."""

    name: str
    demands: Tuple[Tuple[str, float], ...]   # (resource, seconds)

    @property
    def seconds(self) -> float:
        return max(value for _, value in self.demands)

    @property
    def bottleneck(self) -> str:
        return max(self.demands, key=lambda kv: kv[1])[0]


@dataclass(frozen=True)
class AnalyticEstimate:
    """Whole-task estimate: sum of phase bottlenecks."""

    task: str
    arch: str
    phases: Tuple[PhaseEstimate, ...]

    @property
    def seconds(self) -> float:
        return sum(phase.seconds for phase in self.phases)

    @property
    def bottlenecks(self) -> Tuple[str, ...]:
        return tuple(phase.bottleneck for phase in self.phases)

    def render(self) -> str:
        lines = [f"{self.task} on {self.arch}: "
                 f"{self.seconds:.2f}s (analytic)"]
        for phase in self.phases:
            demands = ", ".join(f"{name}={value:.2f}s"
                                for name, value in phase.demands)
            lines.append(f"  {phase.name}: {phase.seconds:.2f}s "
                         f"[{phase.bottleneck}]  ({demands})")
        return "\n".join(lines)


def _fc_efficiency(transfer_bytes: int, loop_rate: float) -> float:
    """Fraction of the wire rate an FCP exchange of this size achieves."""
    wire = transfer_bytes / loop_rate
    return wire / (wire + FC_STARTUP_LATENCY)


def _media_rate(config: ArchConfig) -> float:
    """Capacity-weighted mean streaming rate of the configured drive."""
    spec = config.drive
    return (spec.media_rate_min + spec.media_rate_max) / 2.0


def _phase_volumes(phase: Phase, workers: int) -> Dict[str, float]:
    total = float(phase.read_bytes_total)
    shuffle = (total * phase.shuffle_fraction
               + workers * phase.shuffle_fixed_per_worker)
    frontend = (total * phase.frontend_fraction
                + workers * phase.frontend_fixed_per_worker)
    writes = (total * phase.write_fraction
              + shuffle * phase.recv_write_fraction)
    return {"read": total, "shuffle": shuffle, "frontend": frontend,
            "write": writes}


def _media_seconds(phase: Phase, volumes: Dict[str, float],
                   config: ArchConfig, disks: int) -> float:
    rate = _media_rate(config)
    interleaved = (volumes["write"] > 0.01 * volumes["read"]
                   and not phase.split_disk_groups)
    if phase.read_streams > config.drive.cache_segments:
        interleaved = True
    if interleaved:
        rate *= INTERLEAVE_EFFICIENCY
    return (volumes["read"] + volumes["write"]) / (rate * disks)


def _cpu_seconds(ns_per_byte: float, nbytes: float, mhz: float,
                 units: int) -> float:
    return ns_per_byte * 1e-9 * nbytes * (REFERENCE_MHZ / mhz) / units


def _estimate_active(config: ActiveDiskConfig,
                     phase: Phase) -> PhaseEstimate:
    workers = config.num_disks
    volumes = _phase_volumes(phase, workers)
    loop_rate = config.interconnect_rate / config.interconnect_loops
    efficiency = _fc_efficiency(config.io_request_bytes, loop_rate)
    fabric_rate = config.interconnect_rate * efficiency
    fc_bytes = (volumes["shuffle"] * (workers - 1) / max(1, workers)
                + volumes["frontend"])
    if not config.direct_disk_to_disk:
        fc_bytes += volumes["shuffle"] * (workers - 1) / max(1, workers)
    worker_ns = (phase.cpu_total_ns_per_byte
                 + phase.shuffle_fraction * phase.recv_total_ns_per_byte)
    demands = [
        ("disk_media", _media_seconds(phase, volumes, config, workers)),
        ("disk_cpu", _cpu_seconds(worker_ns, volumes["read"],
                                  config.disk_cpu_mhz, workers)),
        ("interconnect", fc_bytes / fabric_rate),
        ("frontend_link",
         volumes["frontend"] / min(config.frontend_pci_rate, fabric_rate)),
    ]
    if not config.direct_disk_to_disk and volumes["shuffle"] > 0:
        relay = 2 * volumes["shuffle"] * (workers - 1) / max(1, workers)
        demands.append(("frontend_relay", max(
            relay / config.frontend_pci_rate,
            _cpu_seconds(50.0, relay / 2, config.frontend_cpu_mhz, 1))))
    return PhaseEstimate(name=phase.name, demands=tuple(demands))


def _estimate_cluster(config: ClusterConfig,
                      phase: Phase) -> PhaseEstimate:
    workers = config.num_nodes
    volumes = _phase_volumes(phase, workers)
    link = config.ethernet.host_link_rate
    net_bytes = volumes["shuffle"] * (workers - 1) / max(1, workers)
    worker_ns = (phase.cpu_total_ns_per_byte
                 + phase.shuffle_fraction * phase.recv_total_ns_per_byte
                 + CLUSTER_COPY_NS * (1 + 2 * phase.shuffle_fraction
                                      + phase.write_fraction))
    demands = [
        ("disk_media", _media_seconds(phase, volumes, config, workers)),
        ("node_cpu", _cpu_seconds(worker_ns, volumes["read"],
                                  config.node_cpu_mhz, workers)),
        ("node_links", net_bytes / (link * max(1, workers))),
        ("frontend_link", volumes["frontend"] / link),
    ]
    return PhaseEstimate(name=phase.name, demands=tuple(demands))


def _estimate_smp(config: SMPConfig, phase: Phase) -> PhaseEstimate:
    workers = config.num_cpus
    volumes = _phase_volumes(phase, workers)
    loop_rate = (config.io_interconnect_rate
                 / config.io_interconnect_loops)
    efficiency = _fc_efficiency(config.stripe_chunk_bytes, loop_rate)
    fabric_rate = config.io_interconnect_rate * efficiency
    # Every byte to or from the disk farm crosses the shared loop.
    fc_bytes = volumes["read"] + volumes["write"]
    worker_ns = (phase.cpu_total_ns_per_byte
                 + phase.shuffle_fraction * phase.recv_total_ns_per_byte)
    demands = [
        ("disk_media", _media_seconds(phase, volumes, config,
                                      config.num_disks)),
        ("smp_cpu", _cpu_seconds(worker_ns, volumes["read"],
                                 config.cpu_mhz, workers)),
        ("io_interconnect", fc_bytes / fabric_rate),
        ("numa", (volumes["read"] + volumes["shuffle"])
         / (config.numa_link_rate * config.num_boards)),
    ]
    return PhaseEstimate(name=phase.name, demands=tuple(demands))


def analyze_program(config: ArchConfig,
                    program: TaskProgram) -> AnalyticEstimate:
    """Bottleneck analysis of an already-built program."""
    if isinstance(config, ActiveDiskConfig):
        estimator = _estimate_active
    elif isinstance(config, ClusterConfig):
        estimator = _estimate_cluster
    elif isinstance(config, SMPConfig):
        estimator = _estimate_smp
    else:
        raise TypeError(f"unknown config type {type(config).__name__}")
    phases = tuple(estimator(config, phase) for phase in program.phases)
    return AnalyticEstimate(task=program.task, arch=config.arch,
                            phases=phases)


def analyze(config: ArchConfig, task: str,
            scale: float = 1.0) -> AnalyticEstimate:
    """Build ``task``'s program for ``config`` and analyze it."""
    return analyze_program(config, build_program(task, config, scale))
