"""Closed-form performance analysis (the simulator's analytic twin)."""

from .bottleneck import (
    AnalyticEstimate,
    PhaseEstimate,
    analyze,
    analyze_program,
)
from .whatif import (
    DesignPoint,
    design_space,
    pareto_frontier,
    render_design_space,
)
from .price_performance import (
    PricePerformance,
    configuration_price,
    price_performance_table,
)

__all__ = ["analyze", "analyze_program", "AnalyticEstimate",
           "PhaseEstimate",
           "configuration_price", "PricePerformance",
           "price_performance_table",
           "design_space", "pareto_frontier", "DesignPoint",
           "render_design_space"]
