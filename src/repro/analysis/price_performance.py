"""Price/performance analysis: the paper's actual bottom line.

The abstract's claim is not that Active Disks are fastest — it is that
"Active Disks provide better price/performance than both SMP-based
conventional disk farms and commodity clusters". This module combines
the Table 1 cost model with measured (or analytically estimated)
execution times into $/performance figures:

* ``cost_seconds = price_dollars * elapsed_seconds`` — lower is better;
  equivalently dollars per unit throughput at fixed work.
* ratios are reported against Active Disks, like the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.config import (
    ActiveDiskConfig,
    ArchConfig,
    ClusterConfig,
    SMPConfig,
)
from ..arch.costs import active_disk_cost, cluster_cost, smp_cost_estimate
from ..experiments.report import render_table

__all__ = ["configuration_price", "PricePerformance",
           "price_performance_table"]


def configuration_price(config: ArchConfig, date: str = "7/99") -> float:
    """Price of a configuration per the Table 1 / Section 2.2 model."""
    if isinstance(config, ActiveDiskConfig):
        return active_disk_cost(
            config.num_disks, date,
            memory_mb=config.disk_memory_bytes // 1_000_000)
    if isinstance(config, ClusterConfig):
        return cluster_cost(config.num_nodes, date)
    if isinstance(config, SMPConfig):
        return smp_cost_estimate(config.num_cpus)
    raise TypeError(f"unknown config type {type(config).__name__}")


@dataclass(frozen=True)
class PricePerformance:
    """One (task, arch) cell: time, price and their product."""

    task: str
    arch: str
    num_disks: int
    elapsed: float
    price: float

    @property
    def cost_seconds(self) -> float:
        """Dollars x seconds: lower is better price/performance."""
        return self.price * self.elapsed


def price_performance_table(
        cells: Sequence[PricePerformance],
        date: str = "7/99") -> str:
    """Render cells as a table of price/perf ratios vs Active Disks."""
    by_key: Dict[Tuple[str, int], Dict[str, PricePerformance]] = {}
    for cell in cells:
        by_key.setdefault((cell.task, cell.num_disks), {})[cell.arch] = cell
    rows = []
    for (task, disks), per_arch in sorted(by_key.items()):
        if "active" not in per_arch:
            continue
        base = per_arch["active"].cost_seconds
        row = [f"{task}@{disks}",
               f"${per_arch['active'].price:,.0f}",
               f"{per_arch['active'].elapsed:.2f}s"]
        for arch in ("cluster", "smp"):
            if arch in per_arch:
                row.append(f"{per_arch[arch].cost_seconds / base:.1f}x")
            else:
                row.append("-")
        rows.append(tuple(row))
    return render_table(
        f"Price/performance (cost x time, normalized to Active Disks; "
        f"{date} prices)",
        ("task@disks", "AD price", "AD time", "cluster", "smp"),
        rows)
